//! The incremental alignment engine behind [`crate::RimStream`]'s flat
//! ingest→estimate latency.
//!
//! Two pieces:
//!
//! * [`ColumnCache`] — maintains the single-snapshot cross-TRRS columns
//!   (`B[t][l]`, Eqn. 5's raw material) online: every ingested sample
//!   appends one column per tracked antenna pair and backfills the
//!   `l < 0` entries of the previous `W` columns whose source sample has
//!   now arrived. Each entry is produced by the *same* `trrs_norm` call
//!   the batch path would make, so a matrix materialised from the cache
//!   at segment flush is bit-identical to recomputing it — the flush
//!   just stops paying the `O(T·W·S·N)` spike.
//! * [`ProvisionalTracker`] — while a movement segment is open, folds the
//!   cached columns into per-group virtual-massive averages via rolling
//!   box-filter sums, advances the DP peak-tracking forward pass one
//!   column at a time (the exact relaxation step of
//!   [`crate::tracking_dp::track_peaks`]), and derives provisional
//!   distance/heading estimates at a configurable cadence
//!   ([`crate::RimConfig::provisional_every`]). Provisional estimates are
//!   approximate by design (no smoothing, no gap bridging, no rotation
//!   handling); only the final flush is bit-identical to batch.

use crate::alignment::AlignmentMatrix;
use crate::pipeline::{Confidence, Precision, RimConfig};
use crate::reckoning::{heading_from_frac_lag, speed_from_frac_lag};
use crate::soa::{PairKernel, SoaScalar, SoaSeries};
use crate::tracking_dp::{dp_advance_column, dp_jump_cost};
use crate::trrs::{trrs_norm, trrs_norm_f32, NormSnapshot};
use rim_array::ArrayGeometry;
use rim_par::Pool;
use std::collections::VecDeque;

/// Online store of single-snapshot cross-TRRS columns for the antenna
/// pairs the pipeline can ask for (every parallel-group pair plus the
/// adjacent ring pairs), indexed in lockstep with the stream's snapshot
/// ring.
///
/// `cols[p][t - base][k]` holds `κ̄(a[t], b[t - (k - W)])` computed from
/// the ring snapshots, or `0.0` while the source sample has not arrived
/// (it is backfilled when it does) or when the source predates the ring.
/// Materialisation re-masks entries against the flush-time series bounds,
/// which keeps the result bit-identical to
/// [`crate::alignment::base_cross_trrs_range_with`] on the materialised
/// series.
#[derive(Debug, Clone)]
pub struct ColumnCache {
    window: usize,
    /// Absolute sample index of `cols[_][0]`; equals the stream's ring
    /// base at all times (the stream trims both together).
    base: usize,
    /// Ordered `(i, j)` antenna pairs, batch call order.
    pairs: Vec<(usize, usize)>,
    cols: Vec<VecDeque<Vec<f64>>>,
    /// SoA mirror of the stream's snapshot ring, one series per antenna,
    /// in the precision the kernels run at. Lazily sized on the first
    /// `on_sample` (the ring's antenna count is unknown until then).
    mirror: Mirror,
}

/// The precision-specific SoA ring mirror. Precision selects the scalar
/// type once at construction; every column and backfill entry is then
/// produced by the matching [`PairKernel`] (or its scalar reference on
/// ragged input), so cached values stay bit-identical to the batch path
/// of the same precision.
#[derive(Debug, Clone)]
enum Mirror {
    F64(Vec<SoaSeries<f64>>),
    F32(Vec<SoaSeries<f32>>),
}

/// Split-borrow bundle for the generic ingest body (the mirror and the
/// columns come from different `ColumnCache` fields).
struct SampleCtx<'a> {
    window: usize,
    base: usize,
    ring: &'a [VecDeque<NormSnapshot>],
    newest: usize,
}

/// Appends the newest ring sample to the mirror and computes the new
/// column plus backfills for every pair, through the SoA kernel when the
/// series are regular and through `scalar_norm` otherwise. Returns the
/// number of TRRS entries computed.
fn sample_into<T: SoaScalar>(
    ctx: SampleCtx<'_>,
    pairs: &[(usize, usize)],
    cols: &mut [VecDeque<Vec<f64>>],
    mirror: &mut Vec<SoaSeries<T>>,
    scalar_norm: fn(&NormSnapshot, &NormSnapshot) -> f64,
) -> u64 {
    let SampleCtx {
        window,
        base,
        ring,
        newest,
    } = ctx;
    if mirror.is_empty() {
        mirror.extend((0..ring.len()).map(|_| SoaSeries::empty(base)));
    }
    for (m, r) in mirror.iter_mut().zip(ring) {
        m.push(r.back().expect("ring holds the newest sample"));
    }
    let w = window as isize;
    let d_max = window.min(newest - base);
    let mut lane_buf = vec![0.0f64; window.max(1)];
    let mut built = 0u64;
    for (p, &(i, j)) in pairs.iter().enumerate() {
        let a = &ring[i];
        let b = &ring[j];
        let mut col = vec![0.0f64; 2 * window + 1];
        match PairKernel::new(&mirror[i], &mirror[j], window, newest + 1) {
            Some(mut kern) => {
                // The new column for t = newest: the kernel mask
                // [max(t−W, base), min(newest, src_len−1)] is exactly the
                // cache's "source has arrived and is in the ring" rule.
                built += kern.row_into(newest, &a[newest - base], &mut col) as u64;
                // Backfill: column t = newest − d gains its src = newest
                // entry at lag −d (index W − d), swapped-roles lanes over
                // t (bitwise-symmetric to the forward orientation).
                if d_max > 0 {
                    let lo = newest - d_max;
                    kern.lanes_fixed_b(&b[newest - base], lo, &mut lane_buf[..d_max]);
                    for (idx, &v) in lane_buf[..d_max].iter().enumerate() {
                        let t = lo + idx;
                        let k = (w - (newest - t) as isize) as usize;
                        if let Some(prev) = cols[p].get_mut(t - base) {
                            prev[k] = v;
                            built += 1;
                        }
                    }
                }
            }
            None => {
                // Ragged or shapeless series: the scalar reference path.
                for (k, slot) in col.iter_mut().enumerate() {
                    let lag = k as isize - w;
                    let src = newest as isize - lag;
                    if src < base as isize || src > newest as isize {
                        continue;
                    }
                    *slot = scalar_norm(&a[newest - base], &b[src as usize - base]);
                    built += 1;
                }
                for d in 1..=d_max {
                    let t = newest - d;
                    let k = (w - d as isize) as usize;
                    if let Some(prev) = cols[p].get_mut(t - base) {
                        prev[k] = scalar_norm(&a[t - base], &b[newest - base]);
                        built += 1;
                    }
                }
            }
        }
        cols[p].push_back(col);
    }
    built
}

impl ColumnCache {
    /// Builds an empty cache tracking every ordered pair the segment
    /// analysis can request for `geometry`: the parallel-group pairs in
    /// group order, then any adjacent ring pairs not already present.
    /// `precision` selects the scalar type every cached entry is computed
    /// at — [`Precision::F64Reference`] values are bit-identical to the
    /// batch f64 path, [`Precision::F32Fast`] to the batch f32 path.
    pub fn new(geometry: &ArrayGeometry, window: usize, precision: Precision) -> Self {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for group in geometry.parallel_groups() {
            for pg in group {
                let key = (pg.pair.i, pg.pair.j);
                if !pairs.contains(&key) {
                    pairs.push(key);
                }
            }
        }
        if let Some(ring) = geometry.adjacent_ring_pairs() {
            for rp in ring {
                let key = (rp.i, rp.j);
                if !pairs.contains(&key) {
                    pairs.push(key);
                }
            }
        }
        let cols = vec![VecDeque::new(); pairs.len()];
        let mirror = match precision {
            Precision::F64Reference => Mirror::F64(Vec::new()),
            Precision::F32Fast => Mirror::F32(Vec::new()),
        };
        Self {
            window,
            base: 0,
            pairs,
            cols,
            mirror,
        }
    }

    /// Index of ordered pair `(i, j)` among the tracked pairs.
    pub fn pair_index(&self, i: usize, j: usize) -> Option<usize> {
        self.pairs.iter().position(|&p| p == (i, j))
    }

    /// Ingests the newest ring sample: appends one column per tracked
    /// pair (entries whose source sample is still in the future stay 0)
    /// and backfills the negative-lag entries of the previous `W` columns
    /// whose source is the new sample. Returns the number of TRRS entries
    /// computed — the per-sample work is bounded by
    /// `pairs × (3W + 1)` regardless of how long the motion has run.
    pub fn on_sample(&mut self, ring: &[VecDeque<NormSnapshot>], ring_base: usize) -> u64 {
        debug_assert_eq!(self.base, ring_base, "cache and ring trimmed in lockstep");
        let n = ring.first().map_or(0, VecDeque::len);
        if n == 0 {
            return 0;
        }
        let ctx = SampleCtx {
            window: self.window,
            base: self.base,
            ring,
            newest: ring_base + n - 1,
        };
        match &mut self.mirror {
            Mirror::F64(m) => sample_into(ctx, &self.pairs, &mut self.cols, m, trrs_norm),
            Mirror::F32(m) => sample_into(ctx, &self.pairs, &mut self.cols, m, trrs_norm_f32),
        }
    }

    /// Materialises the base cross-TRRS matrix for tracked pair `p` over
    /// ring-relative columns `t0..t1`, re-masked against a series of
    /// `series_len` samples. The copy is tiled across `pool`'s workers;
    /// values are bit-identical to
    /// [`crate::alignment::base_cross_trrs_range_with`] on the
    /// materialised ring series for every thread count.
    ///
    /// # Panics
    /// Panics when the column range exceeds the cached columns.
    pub fn base_matrix_with(
        &self,
        p: usize,
        t0: usize,
        t1: usize,
        series_len: usize,
        pool: &Pool,
    ) -> AlignmentMatrix {
        let cols = &self.cols[p];
        assert!(t0 <= t1 && t1 <= cols.len(), "column range out of bounds");
        let w = self.window as isize;
        let tiles = pool.run_tiles(t1 - t0, |_, rows| {
            rows.map(|r| {
                let t = t0 + r;
                let stored = &cols[t];
                let mut row = vec![0.0f64; 2 * self.window + 1];
                for (k, slot) in row.iter_mut().enumerate() {
                    let lag = k as isize - w;
                    let src = t as isize - lag;
                    if src < 0 || src as usize >= series_len {
                        continue;
                    }
                    *slot = stored[k];
                }
                row
            })
            .collect::<Vec<Vec<f64>>>()
        });
        AlignmentMatrix {
            window: self.window,
            values: tiles.into_iter().flatten().collect(),
        }
    }

    /// Masked maximum of one cached column — what the pre-detection
    /// strided probe folds out of a freshly computed single-column
    /// matrix, served from the cache instead.
    pub fn column_max(&self, p: usize, t: usize, series_len: usize) -> f64 {
        let stored = &self.cols[p][t];
        let w = self.window as isize;
        let mut best = 0.0f64;
        for (k, &v) in stored.iter().enumerate() {
            let lag = k as isize - w;
            let src = t as isize - lag;
            if src < 0 || src as usize >= series_len {
                continue;
            }
            best = best.max(v);
        }
        best
    }

    /// One stored column by absolute sample index, without flush-time
    /// masking (the provisional tracker's view).
    pub(crate) fn raw_column(&self, p: usize, t_abs: usize) -> Option<&[f64]> {
        let idx = t_abs.checked_sub(self.base)?;
        self.cols[p].get(idx).map(Vec::as_slice)
    }

    /// Drops columns below `new_base` (called after the stream trims its
    /// ring, with the ring's new base).
    pub fn trim_to(&mut self, new_base: usize) {
        while self.base < new_base {
            for c in &mut self.cols {
                c.pop_front();
            }
            match &mut self.mirror {
                Mirror::F64(m) => m.iter_mut().for_each(SoaSeries::pop_front),
                Mirror::F32(m) => m.iter_mut().for_each(SoaSeries::pop_front),
            }
            self.base += 1;
        }
    }

    /// Discards every column and rebases (stream split: the ring
    /// restarted at `new_base`).
    pub fn clear(&mut self, new_base: usize) {
        for c in &mut self.cols {
            c.clear();
        }
        match &mut self.mirror {
            Mirror::F64(m) => m.iter_mut().for_each(|s| s.reset(new_base)),
            Mirror::F32(m) => m.iter_mut().for_each(|s| s.reset(new_base)),
        }
        self.base = new_base;
    }
}

/// A provisional mid-motion estimate derived by [`ProvisionalTracker`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProvisionalEstimate {
    /// Distance travelled so far in the open motion, metres. Monotone
    /// non-decreasing across the provisionals of one motion.
    pub(crate) distance_so_far: f64,
    /// Dominant device-frame heading so far, if any sample resolved one.
    pub(crate) heading: Option<f64>,
    /// Confidence over the samples tracked so far
    /// (`interpolated_fraction` is patched in by the stream).
    pub(crate) confidence: Confidence,
}

/// Incremental per-group DP state for one open movement segment.
#[derive(Debug)]
struct GroupTrack {
    /// Cache pair indices of the group's pairs.
    pairs: Vec<usize>,
    sep: f64,
    dir: f64,
    /// Recent group-mean raw columns `[raw_lo, raw_lo + raw.len())`,
    /// bounded by the box-filter half-width.
    raw: VecDeque<Vec<f64>>,
    raw_lo: usize,
    /// Rolling box-filter sum over the current raw window.
    sum: Vec<f64>,
    /// Finalised V-averaged columns from the chunk start.
    avg: AlignmentMatrix,
    /// Per-column noise floor (median), precomputed at finalisation.
    floors: Vec<f64>,
    /// DP forward-pass score of the latest column.
    score: Vec<f64>,
    /// DP parent pointers per advanced column.
    parents: Vec<Vec<u32>>,
    best_prev: Vec<f64>,
    best_parent: Vec<u32>,
}

impl GroupTrack {
    fn reset(&mut self, start: usize) {
        self.raw.clear();
        self.raw_lo = start;
        self.sum.fill(0.0);
        self.avg.values.clear();
        self.floors.clear();
        self.score.clear();
        self.parents.clear();
    }
}

/// Maintains provisional distance/heading for one open movement segment:
/// pulls finalised columns out of the [`ColumnCache`], box-filters them
/// with rolling sums, advances the DP forward pass incrementally and
/// emits a [`ProvisionalEstimate`] every
/// [`crate::RimConfig::provisional_every`] ingested samples.
#[derive(Debug)]
pub(crate) struct ProvisionalTracker {
    /// Absolute start of the current chunk (segment start, or the resume
    /// point after a partial flush).
    start: usize,
    /// Whether earlier chunks of this motion were already flushed.
    continued: bool,
    /// Distance already flushed by partial segment flushes, metres.
    flushed_m: f64,
    /// Largest distance reported so far (monotonicity clamp).
    emitted_max: f64,
    since_emit: usize,
    cadence: usize,
    fs: f64,
    window: usize,
    half: usize,
    cost: f64,
    min_prominence: f64,
    subsample: bool,
    compensate: bool,
    /// Next absolute index to pull as a raw column (complete once the
    /// sample `next_raw + W` has arrived).
    next_raw: usize,
    /// Next absolute index to finalise as a V-averaged column.
    next_avg: usize,
    groups: Vec<GroupTrack>,
}

impl ProvisionalTracker {
    /// Creates a tracker for a motion opened at absolute index `start`.
    pub(crate) fn new(
        geometry: &ArrayGeometry,
        config: &RimConfig,
        cache: &ColumnCache,
        start: usize,
    ) -> Self {
        let n_lags = 2 * config.alignment.window + 1;
        let groups: Vec<GroupTrack> = geometry
            .parallel_groups()
            .iter()
            .filter_map(|g| {
                let pairs: Vec<usize> = g
                    .iter()
                    .filter_map(|pg| cache.pair_index(pg.pair.i, pg.pair.j))
                    .collect();
                if pairs.is_empty() {
                    return None;
                }
                Some(GroupTrack {
                    pairs,
                    sep: g[0].separation,
                    dir: g[0].direction,
                    raw: VecDeque::new(),
                    raw_lo: start,
                    sum: vec![0.0; n_lags],
                    avg: AlignmentMatrix {
                        window: config.alignment.window,
                        values: Vec::new(),
                    },
                    floors: Vec::new(),
                    score: Vec::new(),
                    parents: Vec::new(),
                    best_prev: vec![0.0; n_lags],
                    best_parent: vec![0; n_lags],
                })
            })
            .collect();
        Self {
            start,
            continued: false,
            flushed_m: 0.0,
            emitted_max: 0.0,
            since_emit: 0,
            cadence: config.provisional_every,
            fs: config.sample_rate_hz,
            window: config.alignment.window,
            half: config.alignment.virtual_antennas / 2,
            cost: dp_jump_cost(config.dp.omega, config.alignment.window),
            min_prominence: config.min_peak_prominence,
            subsample: config.subsample_refinement,
            compensate: config.compensate_initial_motion,
            next_raw: start,
            next_avg: start,
            groups,
        }
    }

    /// A partial flush consumed the chunk up to `new_start`: bank its
    /// distance and restart the incremental state there.
    pub(crate) fn on_partial_flush(&mut self, flushed_distance: f64, new_start: usize) {
        self.flushed_m += flushed_distance;
        self.continued = true;
        self.start = new_start;
        self.next_raw = new_start;
        self.next_avg = new_start;
        for g in &mut self.groups {
            g.reset(new_start);
        }
    }

    /// Advances the incremental state for the newly ingested sample
    /// `newest` and, on cadence, returns a provisional estimate.
    pub(crate) fn on_sample(
        &mut self,
        cache: &ColumnCache,
        newest: usize,
    ) -> Option<ProvisionalEstimate> {
        self.advance(cache, newest);
        self.since_emit += 1;
        if self.cadence == 0 || self.since_emit < self.cadence {
            return None;
        }
        let have_columns = self.groups.first().is_some_and(|g| g.avg.n_times() > 0);
        if !have_columns && !self.continued {
            // Nothing tracked yet; hold the cadence until columns exist.
            return None;
        }
        self.since_emit = 0;
        Some(self.estimate())
    }

    /// Pulls complete raw columns and finalises V-averaged columns + DP.
    fn advance(&mut self, cache: &ColumnCache, newest: usize) {
        while self.next_raw + self.window <= newest {
            let t = self.next_raw;
            for g in &mut self.groups {
                let n_lags = 2 * self.window + 1;
                let mut col = vec![0.0f64; n_lags];
                for &p in &g.pairs {
                    if let Some(raw) = cache.raw_column(p, t) {
                        for (acc, &v) in col.iter_mut().zip(raw) {
                            *acc += v;
                        }
                    }
                }
                let inv = 1.0 / g.pairs.len() as f64;
                for v in &mut col {
                    *v *= inv;
                }
                g.raw.push_back(col);
            }
            self.next_raw += 1;
            while self.next_avg + self.half < self.next_raw {
                let ta = self.next_avg;
                let (start, half, cost) = (self.start, self.half, self.cost);
                for g in &mut self.groups {
                    let lo = ta.saturating_sub(half).max(start);
                    let hi = ta + half;
                    if ta == start {
                        g.sum.fill(0.0);
                        for u in lo..=hi {
                            for (acc, v) in g.sum.iter_mut().zip(&g.raw[u - g.raw_lo]) {
                                *acc += v;
                            }
                        }
                    } else {
                        for (acc, v) in g.sum.iter_mut().zip(&g.raw[hi - g.raw_lo]) {
                            *acc += v;
                        }
                        let prev_lo = (ta - 1).saturating_sub(half).max(start);
                        if lo > prev_lo {
                            for (acc, v) in g.sum.iter_mut().zip(&g.raw[prev_lo - g.raw_lo]) {
                                *acc -= v;
                            }
                        }
                    }
                    let denom = (hi - lo + 1) as f64;
                    let col: Vec<f64> = g.sum.iter().map(|v| v / denom).collect();
                    g.floors.push(rim_dsp::stats::median(&col));
                    if g.score.is_empty() {
                        g.score = col.clone();
                    } else {
                        g.parents.push(dp_advance_column(
                            &mut g.score,
                            &col,
                            cost,
                            &mut g.best_prev,
                            &mut g.best_parent,
                        ));
                    }
                    g.avg.values.push(col);
                    while g.raw_lo < lo {
                        g.raw.pop_front();
                        g.raw_lo += 1;
                    }
                }
                self.next_avg += 1;
            }
        }
    }

    /// Backtracks every group's DP path so far, gates and refines like the
    /// batch post-detection, and reports the best group's integral.
    fn estimate(&mut self) -> ProvisionalEstimate {
        struct GroupEstimate {
            distance: f64,
            quality_sum: f64,
            resolved: usize,
            heading: Option<f64>,
        }
        let w = self.window as isize;
        let mut best: Option<GroupEstimate> = None;
        let mut cols_seen = 0usize;
        for g in &self.groups {
            let cols = g.avg.n_times();
            cols_seen = cols_seen.max(cols);
            if cols == 0 {
                continue;
            }
            // Terminal lag: argmax of the forward-pass score (last max on
            // ties, matching the batch terminal selection).
            let (mut k, _) = g
                .score
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("score is non-empty");
            let mut ks = Vec::with_capacity(cols);
            ks.push(k);
            for parent_row in g.parents.iter().rev() {
                k = parent_row[k] as usize;
                ks.push(k);
            }
            ks.reverse();
            let mut est = GroupEstimate {
                distance: 0.0,
                quality_sum: 0.0,
                resolved: 0,
                heading: None,
            };
            let (mut sx, mut sy) = (0.0f64, 0.0f64);
            for (i, &ki) in ks.iter().enumerate() {
                let lag = ki as isize - w;
                let quality = g.avg.values[i][ki] - g.floors[i];
                if quality < self.min_prominence {
                    continue;
                }
                // Boundary-pinned alignments match the chunk edge over and
                // over — not a real alignment (mirrors the batch gate).
                let src = i as isize - lag;
                if src < 3 || src > cols as isize - 3 {
                    continue;
                }
                let refined = if self.subsample {
                    g.avg.refine_lag(i, lag)
                } else {
                    lag as f64
                };
                if let Some(v) = speed_from_frac_lag(g.sep, refined, self.fs) {
                    est.distance += v / self.fs;
                    est.quality_sum += quality;
                    est.resolved += 1;
                }
                if let Some(h) = heading_from_frac_lag(g.dir, refined) {
                    sx += h.cos();
                    sy += h.sin();
                }
            }
            if sx != 0.0 || sy != 0.0 {
                est.heading = Some(sy.atan2(sx));
            }
            let replace = match &best {
                Some(b) => est.quality_sum > b.quality_sum,
                None => true,
            };
            if replace {
                best = Some(est);
            }
        }

        let mut distance = self.flushed_m;
        let mut heading = None;
        let mut confidence = Confidence::default();
        if let Some(b) = best {
            let mut chunk = b.distance;
            if b.resolved > 0 && self.compensate && !self.continued {
                // Minimum initial motion Δd (§5): the follower must cover
                // one separation before the first alignment exists.
                chunk += self.groups.first().map_or(0.0, |g| g.sep);
            }
            distance += chunk;
            heading = b.heading;
            confidence = Confidence {
                peak_margin: if b.resolved > 0 {
                    b.quality_sum / b.resolved as f64
                } else {
                    0.0
                },
                interpolated_fraction: 0.0,
                alignment_coverage: if cols_seen > 0 {
                    b.resolved as f64 / cols_seen as f64
                } else {
                    0.0
                },
            };
        }
        let distance_so_far = self.emitted_max.max(distance);
        self.emitted_max = distance_so_far;
        ProvisionalEstimate {
            distance_so_far,
            heading,
            confidence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::{base_cross_trrs_range, base_cross_trrs_range_with};
    use rim_array::HALF_WAVELENGTH;
    use rim_csi::frame::CsiSnapshot;
    use rim_dsp::complex::Complex64;

    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn snapshot(tag: u64) -> NormSnapshot {
        NormSnapshot::from_snapshot(&CsiSnapshot {
            per_tx: vec![(0..16)
                .map(|k| {
                    let x = (mix(tag.wrapping_mul(0x9E3779B9).wrapping_add(k as u64)) >> 12) as f64
                        / (1u64 << 52) as f64;
                    Complex64::from_polar(1.0, x * std::f64::consts::TAU)
                })
                .collect()],
        })
    }

    /// Feeds `len` samples of a 2-antenna series through the cache one at
    /// a time and checks the materialised matrix against the batch path,
    /// bit for bit, including after ring trims.
    #[test]
    fn cache_matches_batch_base_matrix_bitwise() {
        let geometry = ArrayGeometry::linear(2, HALF_WAVELENGTH);
        let window = 5;
        let len = 40usize;
        let a: Vec<NormSnapshot> = (0..len as u64).map(|t| snapshot(t * 2 + 1)).collect();
        let b: Vec<NormSnapshot> = (0..len as u64).map(|t| snapshot(t * 3 + 7)).collect();

        let mut cache = ColumnCache::new(&geometry, window, Precision::F64Reference);
        let mut ring: Vec<VecDeque<NormSnapshot>> = vec![VecDeque::new(), VecDeque::new()];
        for t in 0..len {
            ring[0].push_back(a[t].clone());
            ring[1].push_back(b[t].clone());
            let built = cache.on_sample(&ring, 0);
            assert!(built > 0);
        }

        let p = cache.pair_index(0, 1).expect("pair tracked");
        let pool = Pool::serial();
        let batch = base_cross_trrs_range(&a, &b, window, 3, len - 2);
        let cached = cache.base_matrix_with(p, 3, len - 2, len, &pool);
        assert_eq!(batch.window, cached.window);
        for (rb, rc) in batch.values.iter().zip(&cached.values) {
            for (vb, vc) in rb.iter().zip(rc) {
                assert_eq!(vb.to_bits(), vc.to_bits());
            }
        }
        // The strided pre-detection probe fold, too.
        for t in 0..len {
            let m = base_cross_trrs_range(&a, &b, window, t, t + 1);
            let direct = m.values[0].iter().cloned().fold(0.0f64, f64::max);
            assert_eq!(direct.to_bits(), cache.column_max(p, t, len).to_bits());
        }
        // Threaded materialisation is bit-identical as well.
        let pool4 = Pool::new(4, 3);
        let batch4 = base_cross_trrs_range_with(&a, &b, window, 0, len, &pool4);
        let cached4 = cache.base_matrix_with(p, 0, len, len, &pool4);
        assert_eq!(batch4, cached4);
    }

    /// After trimming, materialisation against the shorter series must
    /// re-mask entries whose source fell off the front — exactly like the
    /// batch path run on the trimmed series.
    #[test]
    fn cache_trim_matches_batch_on_trimmed_series() {
        let geometry = ArrayGeometry::linear(2, HALF_WAVELENGTH);
        let window = 4;
        let len = 30usize;
        let a: Vec<NormSnapshot> = (0..len as u64).map(|t| snapshot(t * 5 + 11)).collect();
        let b: Vec<NormSnapshot> = (0..len as u64).map(|t| snapshot(t * 7 + 3)).collect();

        let mut cache = ColumnCache::new(&geometry, window, Precision::F64Reference);
        let mut ring: Vec<VecDeque<NormSnapshot>> = vec![VecDeque::new(), VecDeque::new()];
        let mut ring_base = 0usize;
        for t in 0..len {
            ring[0].push_back(a[t].clone());
            ring[1].push_back(b[t].clone());
            cache.on_sample(&ring, ring_base);
            // Trim aggressively once enough history exists.
            if t >= 20 && ring_base < 8 {
                for r in &mut ring {
                    r.pop_front();
                }
                ring_base += 1;
                cache.trim_to(ring_base);
            }
        }
        let p = cache.pair_index(0, 1).unwrap();
        let trimmed_len = len - ring_base;
        let ta: Vec<NormSnapshot> = a[ring_base..].to_vec();
        let tb: Vec<NormSnapshot> = b[ring_base..].to_vec();
        let batch = base_cross_trrs_range(&ta, &tb, window, 0, trimmed_len);
        let cached = cache.base_matrix_with(p, 0, trimmed_len, trimmed_len, &Pool::serial());
        assert_eq!(batch, cached);
    }

    #[test]
    fn provisional_distances_are_monotone() {
        // A planted retrace: antenna 0 revisits antenna 1's samples with a
        // fixed 3-sample delay, so DP locks a clean ridge.
        let geometry = ArrayGeometry::linear(2, HALF_WAVELENGTH);
        let fs = 100.0;
        let mut config = RimConfig::for_sample_rate(fs);
        config.alignment.window = 6;
        config.alignment.virtual_antennas = 5;
        config.provisional_every = 5;
        let len = 120usize;
        let shift = 3u64;
        let b: Vec<NormSnapshot> = (0..len as u64).map(|t| snapshot(t + 100)).collect();
        let a: Vec<NormSnapshot> = (0..len as u64)
            .map(|t| snapshot(t.saturating_sub(shift) + 100))
            .collect();
        let mut cache =
            ColumnCache::new(&geometry, config.alignment.window, Precision::F64Reference);
        let mut tracker = ProvisionalTracker::new(&geometry, &config, &cache, 0);
        let mut ring: Vec<VecDeque<NormSnapshot>> = vec![VecDeque::new(), VecDeque::new()];
        let mut last = f64::NEG_INFINITY;
        let mut emitted = 0usize;
        for t in 0..len {
            ring[0].push_back(a[t].clone());
            ring[1].push_back(b[t].clone());
            cache.on_sample(&ring, 0);
            if let Some(p) = tracker.on_sample(&cache, t) {
                assert!(
                    p.distance_so_far >= last,
                    "provisional went backwards: {} after {last}",
                    p.distance_so_far
                );
                assert!(p.distance_so_far.is_finite());
                last = p.distance_so_far;
                emitted += 1;
            }
        }
        assert!(emitted >= 3, "expected several provisionals, got {emitted}");
        assert!(last > 0.0, "planted retrace should accumulate distance");
    }
}
