//! Movement detection (paper §4.1).
//!
//! The self-TRRS `κ(P_i(t), P_i(t − l_mv))` of one antenna against its own
//! measurement `l_mv` seconds earlier stays ≈1 while static and drops
//! sharply under any motion — sensitive enough to catch transient stops
//! that accelerometer/gyroscope detectors miss (Fig. 7). A fixed threshold
//! works because a static antenna's TRRS "always touches close to 1".

use crate::trrs::{trrs_massive, NormSnapshot};

/// Movement-detection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovementConfig {
    /// Lag `l_mv` in samples — long enough that real motion moves the
    /// antenna by millimetres within it (§4.1's example: 0.01 s at 1 m/s
    /// = 1 cm).
    pub lag: usize,
    /// Virtual-massive block length for the self-TRRS.
    pub virtual_antennas: usize,
    /// TRRS below this ⇒ moving.
    pub threshold: f64,
}

impl MovementConfig {
    /// Defaults for a sample rate: `l_mv` ≈ 50 ms, V ≈ 50 ms worth of
    /// snapshots, threshold 0.85.
    pub fn for_sample_rate(sample_rate_hz: f64) -> Self {
        Self {
            lag: ((0.05 * sample_rate_hz).round() as usize).max(1),
            virtual_antennas: ((0.05 * sample_rate_hz).round() as usize).clamp(1, 30),
            // With matched-delay sanitation a static antenna's self-TRRS
            // sits above ~0.97, so 0.92 keeps a clean static margin while
            // staying sensitive to slowly-decorrelating (deep-NLOS) motion.
            threshold: 0.92,
        }
    }
}

/// The movement indicator: self-TRRS of one antenna at lag `l_mv`, per
/// sample. The first `lag` samples (no history yet) report 1.0 (static).
pub fn movement_indicator(series: &[NormSnapshot], config: MovementConfig) -> Vec<f64> {
    let n = series.len();
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        if t < config.lag {
            out.push(1.0);
        } else {
            out.push(trrs_massive(
                series,
                series,
                t,
                t - config.lag,
                config.virtual_antennas,
            ));
        }
    }
    out
}

/// Thresholded movement detection. Returns one flag per sample
/// (`true` = moving).
pub fn detect_movement(series: &[NormSnapshot], config: MovementConfig) -> Vec<bool> {
    movement_indicator(series, config)
        .into_iter()
        .map(|v| v < config.threshold)
        .collect()
}

/// Data-driven threshold between the static (≈1) and moving (low) modes
/// of an indicator trace: Otsu's method on a 64-bin histogram, maximising
/// the between-class variance. Useful when deploying into an environment
/// whose indicator floor is unknown; falls back to `default_threshold`
/// when the trace does not actually contain both modes (e.g. it is all
/// static).
pub fn auto_threshold(indicator: &[f64], default_threshold: f64) -> f64 {
    if indicator.len() < 16 {
        return default_threshold;
    }
    const BINS: usize = 64;
    let mut hist = [0usize; BINS];
    for &v in indicator {
        let b = ((v.clamp(0.0, 1.0)) * (BINS - 1) as f64).round() as usize;
        hist[b] += 1;
    }
    let total = indicator.len() as f64;
    let total_mean: f64 = hist
        .iter()
        .enumerate()
        .map(|(b, &c)| b as f64 * c as f64)
        .sum::<f64>()
        / total;
    let mut best = (0usize, 0.0f64);
    let mut w0 = 0.0;
    let mut sum0 = 0.0;
    for (b, &count) in hist.iter().enumerate().take(BINS - 1) {
        w0 += count as f64;
        sum0 += b as f64 * count as f64;
        if w0 == 0.0 || w0 == total {
            continue;
        }
        let w1 = total - w0;
        let mu0 = sum0 / w0;
        let mu1 = (total_mean * total - sum0) / w1;
        let between = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
        if between > best.1 {
            best = (b, between);
        }
    }
    let threshold = (best.0 as f64 + 0.5) / (BINS - 1) as f64;
    // Require genuinely bimodal data: both modes populated and the split
    // away from the edges. Otherwise keep the caller's default.
    let below = indicator.iter().filter(|&&v| v < threshold).count();
    let frac = below as f64 / total;
    if !(0.02..=0.98).contains(&frac) || !(0.1..=0.99).contains(&threshold) {
        return default_threshold;
    }
    threshold
}

/// Contiguous moving segments `[start, end)` from a flag sequence,
/// discarding segments shorter than `min_len` samples (debounce).
pub fn moving_segments(flags: &[bool], min_len: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, &m) in flags.iter().enumerate() {
        match (m, start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                if i - s >= min_len {
                    out.push((s, i));
                }
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        if flags.len() - s >= min_len {
            out.push((s, flags.len()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_csi::frame::CsiSnapshot;
    use rim_dsp::complex::Complex64;

    /// splitmix64-style avalanche so values are nonlinear in the input
    /// (a linear hash makes every snapshot a pure linear-phase vector,
    /// which the TRRS cannot tell apart).
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn snapshot(tag: u64) -> CsiSnapshot {
        CsiSnapshot {
            per_tx: vec![(0..16)
                .map(|k| {
                    let x = (mix(tag.wrapping_mul(0xD1B54A33).wrapping_add(k as u64)) >> 12) as f64
                        / (1u64 << 52) as f64;
                    Complex64::from_polar(1.0, x * std::f64::consts::TAU)
                })
                .collect()],
        }
    }

    /// Static then moving then static: tags repeat, then change, then
    /// repeat.
    fn stop_go_series() -> Vec<NormSnapshot> {
        let mut tags = Vec::new();
        tags.extend(std::iter::repeat_n(1u64, 30)); // static
        tags.extend(100..130u64); // moving: every snapshot fresh
        tags.extend(std::iter::repeat_n(2u64, 30)); // static again
        let snaps: Vec<CsiSnapshot> = tags.into_iter().map(snapshot).collect();
        NormSnapshot::series(&snaps)
    }

    fn config() -> MovementConfig {
        MovementConfig {
            lag: 4,
            virtual_antennas: 3,
            threshold: 0.85,
        }
    }

    #[test]
    fn indicator_high_static_low_moving() {
        let series = stop_go_series();
        let ind = movement_indicator(&series, config());
        assert!(ind[20] > 0.99, "static: {}", ind[20]);
        assert!(ind[45] < 0.6, "moving: {}", ind[45]);
        assert!(ind[80] > 0.99, "static again: {}", ind[80]);
    }

    #[test]
    fn detection_flags_match_segments() {
        let series = stop_go_series();
        let flags = detect_movement(&series, config());
        assert!(!flags[20]);
        assert!(flags[45]);
        assert!(!flags[80]);
        let segs = moving_segments(&flags, 5);
        assert_eq!(segs.len(), 1, "one moving burst: {segs:?}");
        let (s, e) = segs[0];
        assert!((28..=36).contains(&s), "start near 30: {s}");
        assert!((58..=68).contains(&e), "end near 60: {e}");
    }

    #[test]
    fn early_samples_default_static() {
        let series = stop_go_series();
        let ind = movement_indicator(&series, config());
        for v in &ind[..4] {
            assert_eq!(*v, 1.0);
        }
    }

    #[test]
    fn segments_debounce_and_tail() {
        let flags = vec![false, true, false, true, true, true, true];
        // min_len 2 drops the single-sample blip, keeps the tail segment.
        assert_eq!(moving_segments(&flags, 2), vec![(3, 7)]);
        assert_eq!(moving_segments(&flags, 1), vec![(1, 2), (3, 7)]);
        assert!(moving_segments(&[], 1).is_empty());
        assert!(moving_segments(&[false; 5], 1).is_empty());
    }

    #[test]
    fn auto_threshold_splits_bimodal_indicator() {
        let series = stop_go_series();
        let ind = movement_indicator(&series, config());
        let th = auto_threshold(&ind, 0.92);
        // The split must separate the static (≈1) samples from the moving
        // (≈0.1–0.6) ones.
        assert!(th > 0.4 && th < 0.99, "threshold {th}");
        let flags: Vec<bool> = ind.iter().map(|&v| v < th).collect();
        assert!(!flags[20] && flags[45] && !flags[80]);
    }

    #[test]
    fn auto_threshold_falls_back_on_unimodal_data() {
        // All-static indicator: no legitimate split exists.
        let ind = vec![0.99; 200];
        assert_eq!(auto_threshold(&ind, 0.92), 0.92);
        // Too few samples.
        assert_eq!(auto_threshold(&[0.5; 4], 0.8), 0.8);
    }

    #[test]
    fn config_scales() {
        let c = MovementConfig::for_sample_rate(200.0);
        assert_eq!(c.lag, 10);
        assert!(c.virtual_antennas >= 1);
        let c2 = MovementConfig::for_sample_rate(20.0);
        assert!(c2.lag >= 1);
    }
}
