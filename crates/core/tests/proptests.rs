//! Property-based tests of the RIM core invariants.

use proptest::prelude::*;
use rim_core::alignment::{
    base_cross_trrs, base_cross_trrs_range_with, virtual_average, virtual_average_with,
    AlignmentMatrix,
};
use rim_core::tracking_dp::{track_peaks, DpConfig};
use rim_core::trrs::{trrs_cfr, trrs_massive, trrs_norm, NormSnapshot};
use rim_csi::frame::CsiSnapshot;
use rim_dsp::complex::Complex64;
use rim_par::Pool;

fn cfr_strategy(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec(
        (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex64::new(re, im)),
        n..=n,
    )
}

fn snapshot_series(len: usize, n_sc: usize) -> impl Strategy<Value = Vec<NormSnapshot>> {
    prop::collection::vec(cfr_strategy(n_sc), len..=len).prop_map(|cfrs| {
        cfrs.into_iter()
            .map(|cfr| NormSnapshot::from_snapshot(&CsiSnapshot { per_tx: vec![cfr] }))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trrs_in_unit_interval_and_symmetric(h1 in cfr_strategy(24), h2 in cfr_strategy(24)) {
        let k12 = trrs_cfr(&h1, &h2);
        let k21 = trrs_cfr(&h2, &h1);
        prop_assert!((0.0..=1.0).contains(&k12));
        prop_assert!((k12 - k21).abs() < 1e-9);
    }

    #[test]
    fn trrs_scale_invariant(
        h in cfr_strategy(24),
        re in -5.0f64..5.0,
        im in -5.0f64..5.0,
    ) {
        let c = Complex64::new(re, im);
        prop_assume!(c.abs() > 1e-3);
        let scaled: Vec<Complex64> = h.iter().map(|&z| z * c).collect();
        let k = trrs_cfr(&h, &scaled);
        prop_assert!((k - 1.0).abs() < 1e-9, "κ(H, cH) = 1, got {k}");
    }

    #[test]
    fn trrs_identity_is_one(h in cfr_strategy(16)) {
        prop_assume!(h.iter().map(|z| z.norm_sqr()).sum::<f64>() > 1e-9);
        prop_assert!((trrs_cfr(&h, &h) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn massive_trrs_is_mean_of_singles(
        a in snapshot_series(12, 8),
        b in snapshot_series(12, 8),
    ) {
        // Interior block: Eqn. 4 is exactly the mean of the per-offset
        // single TRRS values.
        let v = 5usize;
        let k = trrs_massive(&a, &b, 6, 6, v);
        let mut acc = 0.0;
        for off in -2i64..=2 {
            acc += trrs_norm(&a[(6 + off) as usize], &b[(6 + off) as usize]);
        }
        prop_assert!((k - acc / 5.0).abs() < 1e-9);
    }

    #[test]
    fn alignment_matrix_values_in_unit_interval(
        a in snapshot_series(16, 8),
        b in snapshot_series(16, 8),
    ) {
        let m = base_cross_trrs(&a, &b, 4);
        for row in &m.values {
            for &v in row {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
            }
        }
        let g = virtual_average(&m, 5);
        for row in &g.values {
            for &v in row {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
            }
        }
    }

    #[test]
    fn parallel_alignment_is_bit_identical_to_serial(
        a in snapshot_series(24, 8),
        b in snapshot_series(24, 8),
        window in 2usize..6,
        v in 1usize..7,
    ) {
        // Tiling the hot path must never change a single bit, for any
        // thread count or tile size.
        let base = base_cross_trrs(&a, &b, window);
        let avg = virtual_average(&base, v);
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads, 3);
            let base_p = base_cross_trrs_range_with(&a, &b, window, 0, a.len(), &pool);
            let avg_p = virtual_average_with(&base_p, v, &pool);
            for (x, y) in [(&base_p, &base), (&avg_p, &avg)] {
                prop_assert_eq!(x.window, y.window);
                prop_assert_eq!(x.values.len(), y.values.len());
                for (rx, ry) in x.values.iter().zip(&y.values) {
                    for (vx, vy) in rx.iter().zip(ry) {
                        prop_assert_eq!(vx.to_bits(), vy.to_bits(),
                            "threads={} differs from serial", threads);
                    }
                }
            }
        }
    }

    #[test]
    fn averaging_matrices_is_bit_identical_to_serial(
        a in snapshot_series(16, 6),
        b in snapshot_series(16, 6),
    ) {
        let m1 = base_cross_trrs(&a, &b, 3);
        let m2 = base_cross_trrs(&b, &a, 3);
        let serial = AlignmentMatrix::average(&[&m1, &m2]);
        for threads in [2usize, 4, 8] {
            let pool = Pool::new(threads, 2);
            let par = AlignmentMatrix::average_with(&[&m1, &m2], &pool);
            for (rx, ry) in par.values.iter().zip(&serial.values) {
                for (vx, vy) in rx.iter().zip(ry) {
                    prop_assert_eq!(vx.to_bits(), vy.to_bits());
                }
            }
        }
    }

    #[test]
    fn dp_score_at_least_best_constant_path(
        rows in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 7..=7),
            3..10,
        ),
    ) {
        let m = AlignmentMatrix { window: 3, values: rows.clone() };
        let path = track_peaks(&m, DpConfig::default());
        // The optimal path must score at least any fixed-lag path (which
        // incurs zero transition cost).
        for l in 0..7usize {
            let fixed: f64 = rows.iter().map(|r| r[l]).sum();
            prop_assert!(path.score >= fixed - 1e-9,
                "DP {} < fixed-lag {} at {l}", path.score, fixed);
        }
        // And the path stays within the lag range.
        for &lag in &path.lags {
            prop_assert!(lag.unsigned_abs() <= 3);
        }
    }

    #[test]
    fn dp_path_trrs_consistency(
        rows in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 5..=5),
            2..8,
        ),
    ) {
        let m = AlignmentMatrix { window: 2, values: rows };
        let p = track_peaks(&m, DpConfig::default());
        prop_assert_eq!(p.lags.len(), m.n_times());
        prop_assert!((0.0..=1.0).contains(&p.mean_trrs));
        prop_assert!(p.jumpiness >= 0.0);
    }
}
