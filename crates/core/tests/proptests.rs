//! Property-based tests of the RIM core invariants.

use proptest::prelude::*;
use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_core::alignment::{
    base_cross_trrs, base_cross_trrs_range_with, virtual_average, virtual_average_with,
    AlignmentMatrix,
};
use rim_core::stream::{GapFilter, GapOutcome, RimStream, StreamEvent};
use rim_core::tracking_dp::{track_peaks, DpConfig};
use rim_core::trrs::{trrs_cfr, trrs_massive, trrs_norm, NormSnapshot};
use rim_core::RimConfig;
use rim_csi::frame::CsiSnapshot;
use rim_dsp::complex::Complex64;
use rim_dsp::interp::fill_gaps_complex;
use rim_par::Pool;
use std::sync::OnceLock;

fn cfr_strategy(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec(
        (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex64::new(re, im)),
        n..=n,
    )
}

fn snapshot_series(len: usize, n_sc: usize) -> impl Strategy<Value = Vec<NormSnapshot>> {
    prop::collection::vec(cfr_strategy(n_sc), len..=len).prop_map(|cfrs| {
        cfrs.into_iter()
            .map(|cfr| NormSnapshot::from_snapshot(&CsiSnapshot { per_tx: vec![cfr] }))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trrs_in_unit_interval_and_symmetric(h1 in cfr_strategy(24), h2 in cfr_strategy(24)) {
        let k12 = trrs_cfr(&h1, &h2);
        let k21 = trrs_cfr(&h2, &h1);
        prop_assert!((0.0..=1.0).contains(&k12));
        prop_assert!((k12 - k21).abs() < 1e-9);
    }

    #[test]
    fn trrs_scale_invariant(
        h in cfr_strategy(24),
        re in -5.0f64..5.0,
        im in -5.0f64..5.0,
    ) {
        let c = Complex64::new(re, im);
        prop_assume!(c.abs() > 1e-3);
        let scaled: Vec<Complex64> = h.iter().map(|&z| z * c).collect();
        let k = trrs_cfr(&h, &scaled);
        prop_assert!((k - 1.0).abs() < 1e-9, "κ(H, cH) = 1, got {k}");
    }

    #[test]
    fn trrs_identity_is_one(h in cfr_strategy(16)) {
        prop_assume!(h.iter().map(|z| z.norm_sqr()).sum::<f64>() > 1e-9);
        prop_assert!((trrs_cfr(&h, &h) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn massive_trrs_is_mean_of_singles(
        a in snapshot_series(12, 8),
        b in snapshot_series(12, 8),
    ) {
        // Interior block: Eqn. 4 is exactly the mean of the per-offset
        // single TRRS values.
        let v = 5usize;
        let k = trrs_massive(&a, &b, 6, 6, v);
        let mut acc = 0.0;
        for off in -2i64..=2 {
            acc += trrs_norm(&a[(6 + off) as usize], &b[(6 + off) as usize]);
        }
        prop_assert!((k - acc / 5.0).abs() < 1e-9);
    }

    #[test]
    fn alignment_matrix_values_in_unit_interval(
        a in snapshot_series(16, 8),
        b in snapshot_series(16, 8),
    ) {
        let m = base_cross_trrs(&a, &b, 4);
        for row in &m.values {
            for &v in row {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
            }
        }
        let g = virtual_average(&m, 5);
        for row in &g.values {
            for &v in row {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
            }
        }
    }

    #[test]
    fn parallel_alignment_is_bit_identical_to_serial(
        a in snapshot_series(24, 8),
        b in snapshot_series(24, 8),
        window in 2usize..6,
        v in 1usize..7,
    ) {
        // Tiling the hot path must never change a single bit, for any
        // thread count or tile size.
        let base = base_cross_trrs(&a, &b, window);
        let avg = virtual_average(&base, v);
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads, 3);
            let base_p = base_cross_trrs_range_with(&a, &b, window, 0, a.len(), &pool);
            let avg_p = virtual_average_with(&base_p, v, &pool);
            for (x, y) in [(&base_p, &base), (&avg_p, &avg)] {
                prop_assert_eq!(x.window, y.window);
                prop_assert_eq!(x.values.len(), y.values.len());
                for (rx, ry) in x.values.iter().zip(&y.values) {
                    for (vx, vy) in rx.iter().zip(ry) {
                        prop_assert_eq!(vx.to_bits(), vy.to_bits(),
                            "threads={} differs from serial", threads);
                    }
                }
            }
        }
    }

    #[test]
    fn averaging_matrices_is_bit_identical_to_serial(
        a in snapshot_series(16, 6),
        b in snapshot_series(16, 6),
    ) {
        let m1 = base_cross_trrs(&a, &b, 3);
        let m2 = base_cross_trrs(&b, &a, 3);
        let serial = AlignmentMatrix::average(&[&m1, &m2]);
        for threads in [2usize, 4, 8] {
            let pool = Pool::new(threads, 2);
            let par = AlignmentMatrix::average_with(&[&m1, &m2], &pool);
            for (rx, ry) in par.values.iter().zip(&serial.values) {
                for (vx, vy) in rx.iter().zip(ry) {
                    prop_assert_eq!(vx.to_bits(), vy.to_bits());
                }
            }
        }
    }

    #[test]
    fn dp_score_at_least_best_constant_path(
        rows in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 7..=7),
            3..10,
        ),
    ) {
        let m = AlignmentMatrix { window: 3, values: rows.clone() };
        let path = track_peaks(&m, DpConfig::default());
        // The optimal path must score at least any fixed-lag path (which
        // incurs zero transition cost).
        for l in 0..7usize {
            let fixed: f64 = rows.iter().map(|r| r[l]).sum();
            prop_assert!(path.score >= fixed - 1e-9,
                "DP {} < fixed-lag {} at {l}", path.score, fixed);
        }
        // And the path stays within the lag range.
        for &lag in &path.lags {
            prop_assert!(lag.unsigned_abs() <= 3);
        }
    }

    #[test]
    fn dp_path_trrs_consistency(
        rows in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 5..=5),
            2..8,
        ),
    ) {
        let m = AlignmentMatrix { window: 2, values: rows };
        let p = track_peaks(&m, DpConfig::default());
        prop_assert_eq!(p.lags.len(), m.n_times());
        prop_assert!((0.0..=1.0).contains(&p.mean_trrs));
        prop_assert!(p.jumpiness >= 0.0);
    }
}

// --- gap-tolerant streaming --------------------------------------------

const GAP_MAX: usize = 4;

/// Whole-sample loss mask: first sample always present, loss runs capped
/// at `GAP_MAX` so every gap is bridgeable.
fn bridgeable_mask(n: usize, p_lost: f64) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(0.0f64..1.0, n..=n).prop_map(move |draws| {
        let mut mask: Vec<bool> = draws.iter().map(|&x| x < p_lost).collect();
        mask[0] = false;
        let mut run = 0usize;
        for lost in mask.iter_mut() {
            if *lost {
                run += 1;
                if run > GAP_MAX {
                    *lost = false;
                    run = 0;
                }
            } else {
                run = 0;
            }
        }
        mask
    })
}

/// A deterministic two-antenna snapshot derived from a base value.
fn gap_snap(antenna: usize, v: f64) -> CsiSnapshot {
    CsiSnapshot {
        per_tx: vec![(0..4)
            .map(|s| Complex64::new(v + (antenna * 10 + s) as f64, v * 0.5 - s as f64))
            .collect()],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gap_filter_matches_batch_interpolation(
        values in prop::collection::vec(-8.0f64..8.0, 24..=40),
        mask_draws in prop::collection::vec(0.0f64..1.0, 40..=40),
    ) {
        let n = values.len();
        let mut mask: Vec<bool> = mask_draws[..n].iter().map(|&x| x < 0.35).collect();
        mask[0] = false;
        let mut run = 0usize;
        for lost in mask.iter_mut() {
            if *lost {
                run += 1;
                if run > GAP_MAX { *lost = false; run = 0; }
            } else { run = 0; }
        }

        // Stream the surviving samples through the gap filter.
        let mut filter = GapFilter::new(2, GAP_MAX);
        let mut delivered = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            if mask[i] { continue; }
            match filter.offer(
                i as u64,
                &[Some(gap_snap(0, v)), Some(gap_snap(1, v))],
            ) {
                GapOutcome::Deliver(samples) => delivered.extend(samples),
                other => prop_assert!(false, "unexpected outcome {other:?}"),
            }
        }

        // Batch reference: interpolate each antenna/subcarrier series with
        // `fill_gaps_complex` over the same holes.
        let last = (0..n).rev().find(|&i| !mask[i]).unwrap();
        prop_assert_eq!(delivered.len(), last + 1, "every bridgeable sample delivered");
        for antenna in 0..2usize {
            for sc in 0..4usize {
                let series: Vec<Option<Complex64>> = (0..n)
                    .map(|i| (!mask[i]).then(|| gap_snap(antenna, values[i]).per_tx[0][sc]))
                    .collect();
                let batch = fill_gaps_complex(&series).expect("interpolable");
                for (i, sample) in delivered.iter().enumerate() {
                    let streamed = sample.snapshots[antenna].per_tx[0][sc];
                    prop_assert_eq!(
                        streamed.re.to_bits(), batch[i].re.to_bits(),
                        "antenna {} sc {} sample {} re", antenna, sc, i
                    );
                    prop_assert_eq!(
                        streamed.im.to_bits(), batch[i].im.to_bits(),
                        "antenna {} sc {} sample {} im", antenna, sc, i
                    );
                    prop_assert_eq!(sample.interpolated, mask[i]);
                }
            }
        }
    }

    #[test]
    fn gap_filter_duplicates_and_reorders_are_idempotent(
        values in prop::collection::vec(-8.0f64..8.0, 16..=24),
        inject in prop::collection::vec(0u8..4, 24..=24),
    ) {
        let feed = |with_noise: bool| -> Vec<(u64, bool)> {
            let mut filter = GapFilter::new(1, GAP_MAX);
            let mut out = Vec::new();
            for (i, &v) in values.iter().enumerate() {
                match filter.offer(i as u64, &[Some(gap_snap(0, v))]) {
                    GapOutcome::Deliver(samples) => {
                        out.extend(samples.iter().map(|s| (s.seq, s.interpolated)));
                    }
                    other => panic!("unexpected outcome {other:?}"),
                }
                if !with_noise {
                    continue;
                }
                // Duplicates of the current seq and stale re-sends of
                // older seqs must be dropped without disturbing state.
                match inject[i] {
                    1 => {
                        let o = filter.offer(i as u64, &[Some(gap_snap(0, v + 1.0))]);
                        assert!(matches!(o, GapOutcome::Dropped(_)), "{o:?}");
                    }
                    2 if i >= 3 => {
                        let o = filter.offer(i as u64 - 3, &[Some(gap_snap(0, v - 1.0))]);
                        assert!(matches!(o, GapOutcome::Dropped(_)), "{o:?}");
                    }
                    _ => {}
                }
            }
            out
        };
        prop_assert_eq!(feed(false), feed(true));
    }
}

/// A shared CSI recording for the serial/parallel streaming comparison:
/// simulating the channel once keeps the property affordable.
fn shared_walk() -> &'static Vec<Vec<CsiSnapshot>> {
    static WALK: OnceLock<Vec<Vec<CsiSnapshot>>> = OnceLock::new();
    WALK.get_or_init(|| {
        use rim_channel::trajectory::{line, OrientationMode};
        use rim_channel::ChannelSimulator;
        let fs = 100.0;
        let sim = ChannelSimulator::open_lab(7);
        let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let dense = rim_csi::CsiRecorder::new(
            &sim,
            rim_csi::DeviceConfig::single_nic(geometry.offsets().to_vec()),
            rim_csi::RecorderConfig::default(),
        )
        .record(&line(
            rim_dsp::geom::Point2::new(0.0, 2.0),
            0.0,
            1.2,
            1.0,
            fs,
            OrientationMode::Fixed(0.0),
        ))
        .interpolated()
        .expect("interpolable");
        (0..dense.n_samples())
            .map(|i| dense.antennas.iter().map(|a| a[i].clone()).collect())
            .collect()
    })
}

/// A bursty Gilbert–Elliott-style loss mask: a two-state chain with a
/// sticky bad state, burst lengths still capped at `GAP_MAX` so every
/// gap is bridgeable.
fn ge_mask(n: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(0.0f64..1.0, n..=n).prop_map(move |draws| {
        let mut mask = vec![false; n];
        let mut bad = false;
        let mut run = 0usize;
        for (i, &x) in draws.iter().enumerate() {
            bad = if bad { x < 0.7 } else { x < 0.05 };
            let mut lost = bad && i > 0;
            if lost {
                run += 1;
                if run > GAP_MAX {
                    lost = false;
                    run = 0;
                    bad = false;
                }
            } else {
                run = 0;
            }
            mask[i] = lost;
        }
        mask
    })
}

/// One of the three loss models the incremental engine must be
/// bit-identical under: lossless, iid 10%, and bursty (Gilbert–Elliott).
fn loss_mask(n: usize) -> impl Strategy<Value = Vec<bool>> {
    (0usize..3, bridgeable_mask(n, 0.1), ge_mask(n)).prop_map(move |(model, iid, ge)| match model {
        0 => vec![false; n],
        1 => iid,
        _ => ge,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn streaming_with_gaps_is_bit_identical_across_thread_counts(
        mask in bridgeable_mask(120, 0.2),
    ) {
        let walk = shared_walk();
        let fs = 100.0;
        let run = |threads: usize| {
            let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);
            let config = RimConfig::for_sample_rate(fs)
                .with_min_speed(0.3, HALF_WAVELENGTH, fs)
                .with_threads(threads);
            let mut stream = RimStream::new(geometry, config).expect("valid config");
            let mut segments = Vec::new();
            let mut degraded = 0usize;
            let mut absorb = |events: Vec<StreamEvent>| {
                for e in events {
                    match e {
                        StreamEvent::Segment(s) => segments.push(s),
                        StreamEvent::Degraded { .. } => degraded += 1,
                        _ => {}
                    }
                }
            };
            for (i, snaps) in walk.iter().enumerate() {
                if *mask.get(i).unwrap_or(&false) {
                    continue;
                }
                let antennas: Vec<_> = snaps.iter().cloned().map(Some).collect();
                absorb(stream.ingest((i as u64, antennas)).expect("ingest"));
            }
            absorb(stream.finish());
            (segments, degraded)
        };
        let (serial, serial_degraded) = run(1);
        let (parallel, parallel_degraded) = run(4);
        prop_assert_eq!(serial.len(), parallel.len());
        prop_assert_eq!(serial_degraded, parallel_degraded);
        for (a, b) in serial.iter().zip(&parallel) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
            prop_assert_eq!(a.distance_m.to_bits(), b.distance_m.to_bits());
            prop_assert_eq!(
                a.confidence.peak_margin.to_bits(),
                b.confidence.peak_margin.to_bits()
            );
            prop_assert_eq!(
                a.confidence.interpolated_fraction.to_bits(),
                b.confidence.interpolated_fraction.to_bits()
            );
            prop_assert_eq!(
                a.confidence.alignment_coverage.to_bits(),
                b.confidence.alignment_coverage.to_bits()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The tentpole invariant: reusing the incrementally built columns at
    /// segment flush must leave the final estimates bit-identical to the
    /// batch path, for every loss model and thread count.
    #[test]
    fn incremental_final_estimates_match_batch_bitwise(
        mask in loss_mask(120),
    ) {
        let walk = shared_walk();
        let fs = 100.0;
        let run = |threads: usize, incremental: bool| {
            let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);
            let mut config = RimConfig::for_sample_rate(fs)
                .with_min_speed(0.3, HALF_WAVELENGTH, fs)
                .with_threads(threads);
            config.incremental = incremental;
            if !incremental {
                config.provisional_every = 0;
            }
            let mut stream = RimStream::new(geometry, config).expect("valid config");
            let mut segments = Vec::new();
            let mut absorb = |events: Vec<StreamEvent>| {
                for e in events {
                    if let StreamEvent::Segment(s) = e {
                        segments.push(s);
                    }
                }
            };
            for (i, snaps) in walk.iter().enumerate() {
                if *mask.get(i).unwrap_or(&false) {
                    continue;
                }
                let antennas: Vec<_> = snaps.iter().cloned().map(Some).collect();
                absorb(stream.ingest((i as u64, antennas)).expect("ingest"));
            }
            absorb(stream.finish());
            segments
        };
        let reference = run(1, false);
        for threads in [1usize, 2, 4, 8] {
            let inc = run(threads, true);
            prop_assert_eq!(reference.len(), inc.len(), "threads={}", threads);
            for (a, b) in reference.iter().zip(&inc) {
                prop_assert_eq!(a.start, b.start);
                prop_assert_eq!(a.end, b.end);
                prop_assert_eq!(a.kind, b.kind);
                prop_assert_eq!(
                    a.distance_m.to_bits(), b.distance_m.to_bits(),
                    "threads={} distance", threads
                );
                prop_assert_eq!(
                    a.heading_device.map(f64::to_bits),
                    b.heading_device.map(f64::to_bits)
                );
                prop_assert_eq!(a.rotation_rad.to_bits(), b.rotation_rad.to_bits());
                prop_assert_eq!(
                    a.confidence.peak_margin.to_bits(),
                    b.confidence.peak_margin.to_bits()
                );
                prop_assert_eq!(
                    a.confidence.interpolated_fraction.to_bits(),
                    b.confidence.interpolated_fraction.to_bits()
                );
                prop_assert_eq!(
                    a.confidence.alignment_coverage.to_bits(),
                    b.confidence.alignment_coverage.to_bits()
                );
            }
        }
    }

    /// Provisional estimates are a running prefix of the motion: within
    /// one movement their reported distance never decreases, under every
    /// loss model.
    #[test]
    fn provisional_distances_monotone_within_motion(
        mask in loss_mask(120),
    ) {
        let walk = shared_walk();
        let fs = 100.0;
        let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut config = RimConfig::for_sample_rate(fs)
            .with_min_speed(0.3, HALF_WAVELENGTH, fs);
        config.provisional_every = 5;
        let mut stream = RimStream::new(geometry, config).expect("valid config");
        let mut all_events = Vec::new();
        for (i, snaps) in walk.iter().enumerate() {
            if *mask.get(i).unwrap_or(&false) {
                continue;
            }
            let antennas: Vec<_> = snaps.iter().cloned().map(Some).collect();
            all_events.extend(stream.ingest((i as u64, antennas)).expect("ingest"));
        }
        all_events.extend(stream.finish());
        let mut last: Option<f64> = None;
        let mut provisionals = 0usize;
        for e in all_events {
            match e {
                StreamEvent::Provisional { distance_so_far, .. } => {
                    prop_assert!(distance_so_far.is_finite());
                    if let Some(prev) = last {
                        prop_assert!(
                            distance_so_far >= prev,
                            "provisional went backwards: {} after {}",
                            distance_so_far,
                            prev
                        );
                    }
                    last = Some(distance_so_far);
                    provisionals += 1;
                }
                StreamEvent::MovementStopped { .. } => last = None,
                _ => {}
            }
        }
        prop_assert!(provisionals > 0, "the walk's motion emits provisionals");
    }
}
