//! # rim-dsp
//!
//! Digital-signal-processing substrate for the RIM (RF-based Inertial
//! Measurement, SIGCOMM 2019) reproduction: complex arithmetic, FFTs,
//! convolution/correlation, interpolation, smoothing filters, descriptive
//! statistics and plane geometry.
//!
//! This crate has no dependencies and every function is deterministic,
//! making it the foundation the channel simulator, CSI layer and RIM core
//! are built (and property-tested) on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bessel;
pub mod complex;
pub mod conv;
pub mod fft;
pub mod filter;
pub mod geom;
pub mod interp;
pub mod stats;

pub use complex::{inner_product, norm_sqr, normalize_in_place, Complex64};
pub use geom::{Point2, Segment, Vec2};
