//! Interpolation and resampling.
//!
//! Used by the CSI layer to repair packet loss (null CSI insertion followed
//! by gap interpolation, paper §5 "Packet synchronization and interpolation")
//! and by the evaluation harness to downsample CSI streams for the
//! sampling-rate sweep (paper Fig. 16).

use crate::complex::Complex64;

/// Linear interpolation of `y` at query point `x` given sorted knots `xs`.
///
/// Extrapolates by clamping to the end values. Returns `None` if `xs` is
/// empty or if `xs` and `ys` differ in length.
pub fn lerp_at(xs: &[f64], ys: &[f64], x: f64) -> Option<f64> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    if x <= xs[0] {
        return Some(ys[0]);
    }
    if x >= xs[xs.len() - 1] {
        return Some(ys[ys.len() - 1]);
    }
    // Binary search for the bracketing interval.
    let idx = xs.partition_point(|&v| v <= x);
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let (y0, y1) = (ys[idx - 1], ys[idx]);
    if x1 == x0 {
        return Some(y0);
    }
    let t = (x - x0) / (x1 - x0);
    Some(y0 + t * (y1 - y0))
}

/// Fills `None` gaps in a sequence of complex samples by linear
/// interpolation between the nearest present neighbours, component-wise.
///
/// Leading/trailing gaps are filled by holding the nearest present value.
/// Returns `None` if every element is missing.
pub fn fill_gaps_complex(xs: &[Option<Complex64>]) -> Option<Vec<Complex64>> {
    let first = xs.iter().position(|v| v.is_some())?;
    let last = xs.iter().rposition(|v| v.is_some())?;
    let n = xs.len();
    let mut out = Vec::with_capacity(n);
    // Leading hold.
    let first_val = xs[first].unwrap();
    for _ in 0..first {
        out.push(first_val);
    }
    let mut i = first;
    while i <= last {
        match xs[i] {
            Some(v) => {
                out.push(v);
                i += 1;
            }
            None => {
                // Find the end of this gap; `last` guarantees a right anchor.
                let start = i;
                let mut j = i;
                while xs[j].is_none() {
                    j += 1;
                }
                let left = out[start - 1];
                let right = xs[j].unwrap();
                let span = (j - start + 1) as f64;
                for (step, _) in (start..j).enumerate() {
                    let t = (step + 1) as f64 / span;
                    out.push(left + (right - left).scale(t));
                }
                i = j;
            }
        }
    }
    // Trailing hold.
    let last_val = xs[last].unwrap();
    for _ in last + 1..n {
        out.push(last_val);
    }
    Some(out)
}

/// Decimates a slice by an integer factor, keeping every `factor`-th
/// element starting at index 0.
///
/// # Panics
/// Panics if `factor` is zero.
pub fn decimate<T: Copy>(x: &[T], factor: usize) -> Vec<T> {
    assert!(factor > 0, "decimation factor must be positive");
    x.iter().step_by(factor).copied().collect()
}

/// Resamples a uniformly-sampled real signal from `from_hz` to `to_hz`
/// using linear interpolation. The output covers the same time span.
pub fn resample_linear(x: &[f64], from_hz: f64, to_hz: f64) -> Vec<f64> {
    assert!(from_hz > 0.0 && to_hz > 0.0, "rates must be positive");
    if x.is_empty() {
        return Vec::new();
    }
    let duration = (x.len() - 1) as f64 / from_hz;
    let n_out = (duration * to_hz).floor() as usize + 1;
    let xs: Vec<f64> = (0..x.len()).map(|k| k as f64 / from_hz).collect();
    (0..n_out)
        .map(|k| lerp_at(&xs, x, k as f64 / to_hz).unwrap())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_midpoint() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 20.0];
        assert_eq!(lerp_at(&xs, &ys, 0.5), Some(5.0));
        assert_eq!(lerp_at(&xs, &ys, 1.5), Some(15.0));
    }

    #[test]
    fn lerp_clamps_out_of_range() {
        let xs = [0.0, 1.0];
        let ys = [2.0, 4.0];
        assert_eq!(lerp_at(&xs, &ys, -5.0), Some(2.0));
        assert_eq!(lerp_at(&xs, &ys, 9.0), Some(4.0));
    }

    #[test]
    fn lerp_rejects_bad_input() {
        assert_eq!(lerp_at(&[], &[], 0.0), None);
        assert_eq!(lerp_at(&[0.0], &[1.0, 2.0], 0.0), None);
    }

    #[test]
    fn lerp_exact_knot() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.0, 3.0, 9.0];
        assert_eq!(lerp_at(&xs, &ys, 1.0), Some(3.0));
    }

    #[test]
    fn fill_gaps_interior() {
        let c = |re: f64| Complex64::from_re(re);
        let xs = [Some(c(0.0)), None, None, Some(c(3.0))];
        let out = fill_gaps_complex(&xs).unwrap();
        assert!((out[1].re - 1.0).abs() < 1e-12);
        assert!((out[2].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fill_gaps_edges_hold() {
        let c = |re: f64| Complex64::from_re(re);
        let xs = [None, Some(c(5.0)), None];
        let out = fill_gaps_complex(&xs).unwrap();
        assert_eq!(out[0].re, 5.0);
        assert_eq!(out[2].re, 5.0);
    }

    #[test]
    fn fill_gaps_all_missing_is_none() {
        assert!(fill_gaps_complex(&[None, None]).is_none());
        assert!(fill_gaps_complex(&[]).is_none());
    }

    #[test]
    fn fill_gaps_no_gaps_identity() {
        let xs: Vec<Option<Complex64>> = (0..5)
            .map(|k| Some(Complex64::new(k as f64, -(k as f64))))
            .collect();
        let out = fill_gaps_complex(&xs).unwrap();
        for (o, x) in out.iter().zip(&xs) {
            assert_eq!(*o, x.unwrap());
        }
    }

    #[test]
    fn decimate_basic() {
        let x = [0, 1, 2, 3, 4, 5, 6];
        assert_eq!(decimate(&x, 2), vec![0, 2, 4, 6]);
        assert_eq!(decimate(&x, 3), vec![0, 3, 6]);
        assert_eq!(decimate(&x, 1), x.to_vec());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn decimate_zero_panics() {
        let _ = decimate(&[1], 0);
    }

    #[test]
    fn resample_identity_rate() {
        let x = [1.0, 2.0, 3.0];
        let y = resample_linear(&x, 100.0, 100.0);
        assert_eq!(y, x.to_vec());
    }

    #[test]
    fn resample_halves_sample_count() {
        let x: Vec<f64> = (0..201).map(|k| k as f64).collect();
        let y = resample_linear(&x, 200.0, 100.0);
        assert_eq!(y.len(), 101);
        assert!((y[1] - 2.0).abs() < 1e-9); // 10 ms at 200 Hz is sample 2.
    }

    #[test]
    fn resample_preserves_linear_signal() {
        let x: Vec<f64> = (0..101).map(|k| 0.5 * k as f64).collect();
        let y = resample_linear(&x, 100.0, 77.0);
        for (k, &v) in y.iter().enumerate() {
            let t = k as f64 / 77.0;
            assert!((v - 50.0 * t).abs() < 1e-9);
        }
    }
}
