//! Minimal double-precision complex arithmetic.
//!
//! The RIM pipeline is built on inner products and convolutions of channel
//! frequency responses, which are vectors of complex numbers. We implement
//! the small amount of complex arithmetic we need directly instead of
//! pulling in an external numerics crate; everything here is `Copy`, inlined
//! and branch-free.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The imaginary unit `i`.
pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

/// Complex zero.
pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };

/// Complex one.
pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

impl Complex64 {
    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self::new(r * c, r * s)
    }

    /// Unit phasor `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`, computed without a square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`. Uses `hypot` for robustness against overflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value if `z` is zero, matching IEEE semantics of
    /// the underlying division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Returns `z / |z|`, or zero if `z` is zero.
    #[inline]
    pub fn normalize(self) -> Self {
        let a = self.abs();
        if a == 0.0 {
            ZERO
        } else {
            self.scale(1.0 / a)
        }
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Fused multiply-add: `self * b + c`.
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self::new(
            self.re * b.re - self.im * b.im + c.re,
            self.re * b.im + self.im * b.re + c.im,
        )
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_re(re)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    // Division *is* multiplication by the inverse for complex numbers.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ZERO, |a, b| a + b)
    }
}

/// Hermitian inner product `⟨x, y⟩ = Σ x[k]* · y[k]` (conjugate on the left,
/// matching the `H₁ᴴH₂` convention of the TRRS definition).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn inner_product(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    assert_eq!(x.len(), y.len(), "inner product of unequal lengths");
    let mut acc = ZERO;
    for (&a, &b) in x.iter().zip(y) {
        acc = a.conj().mul_add(b, acc);
    }
    acc
}

/// Squared Euclidean norm `Σ |x[k]|²`.
pub fn norm_sqr(x: &[Complex64]) -> f64 {
    x.iter().map(|z| z.norm_sqr()).sum()
}

/// Scales a vector in place so that its Euclidean norm is 1.
///
/// A zero vector is left unchanged.
pub fn normalize_in_place(x: &mut [Complex64]) {
    let n = norm_sqr(x).sqrt();
    if n > 0.0 {
        let inv = 1.0 / n;
        for z in x {
            *z = z.scale(inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert!(close(z + ZERO, z));
        assert!(close(z * ONE, z));
        assert!(close(z * z.inv(), ONE));
        assert!(close(z - z, ZERO));
        assert!(close(-z + z, ZERO));
        assert!(close(z / z, ONE));
    }

    #[test]
    fn abs_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z.normalize(), Complex64::new(0.6, 0.8)));
        assert_eq!(ZERO.normalize(), ZERO);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..32 {
            let theta = k as f64 * 0.41;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex64::new(1.5, 2.5);
        let b = Complex64::new(-0.5, 4.0);
        assert!(close((a * b).conj(), a.conj() * b.conj()));
        assert!(close((a + b).conj(), a.conj() + b.conj()));
        assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn exp_of_zero_and_pi() {
        assert!(close(ZERO.exp(), ONE));
        let e_ipi = (I * std::f64::consts::PI).exp();
        assert!((e_ipi + ONE).abs() < 1e-12);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        let c = Complex64::new(-2.0, 0.5);
        assert!(close(a.mul_add(b, c), a * b + c));
    }

    #[test]
    fn inner_product_hermitian_symmetry() {
        let x = [Complex64::new(1.0, 1.0), Complex64::new(0.0, 2.0)];
        let y = [Complex64::new(2.0, -1.0), Complex64::new(1.0, 1.0)];
        let xy = inner_product(&x, &y);
        let yx = inner_product(&y, &x);
        assert!(close(xy, yx.conj()));
    }

    #[test]
    fn inner_product_with_self_is_norm() {
        let x = [Complex64::new(1.0, 2.0), Complex64::new(-3.0, 0.5)];
        let ip = inner_product(&x, &x);
        assert!((ip.im).abs() < 1e-12);
        assert!((ip.re - norm_sqr(&x)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn inner_product_length_mismatch_panics() {
        let _ = inner_product(&[ZERO], &[ZERO, ZERO]);
    }

    #[test]
    fn normalize_in_place_unit_norm() {
        let mut x = vec![Complex64::new(3.0, 0.0), Complex64::new(0.0, 4.0)];
        normalize_in_place(&mut x);
        assert!((norm_sqr(&x) - 1.0).abs() < 1e-12);
        let mut zeros = vec![ZERO; 4];
        normalize_in_place(&mut zeros);
        assert!(zeros.iter().all(|&z| z == ZERO));
    }

    #[test]
    fn sum_over_iterator() {
        let xs = [ONE, I, Complex64::new(2.0, 3.0)];
        let s: Complex64 = xs.iter().copied().sum();
        assert!(close(s, Complex64::new(3.0, 4.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex64::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Complex64::new(1.0, -2.0)), "1-2i");
    }
}
