//! Plane geometry primitives shared by the propagation, array and tracking
//! layers: points, vectors, rigid transforms and segment intersection.
//!
//! RIM is a 2-D system (paper §2: "RIM estimates all these parameters for
//! 2D motions"), so all geometry is planar.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A 2-D point in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// x-coordinate in metres.
    pub x: f64,
    /// y-coordinate in metres.
    pub y: f64,
}

/// A 2-D displacement vector in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// x-component in metres.
    pub x: f64,
    /// y-component in metres.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Vector from this point to `other`.
    pub fn to(self, other: Point2) -> Vec2 {
        other - self
    }

    /// Midpoint of the segment to `other`.
    pub fn midpoint(self, other: Point2) -> Point2 {
        Point2::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }
}

impl Vec2 {
    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Unit vector at angle `theta` (radians, counter-clockwise from +x).
    pub fn from_angle(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self::new(c, s)
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm.
    pub fn norm_sqr(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Angle of the vector, `atan2(y, x)` in `(-π, π]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Unit vector in the same direction, or zero for the zero vector.
    pub fn normalize(self) -> Vec2 {
        let n = self.norm();
        if n == 0.0 {
            Vec2::ZERO
        } else {
            self * (1.0 / n)
        }
    }

    /// Rotates the vector counter-clockwise by `theta` radians.
    pub fn rotate(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Perpendicular vector (90° counter-clockwise).
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    fn add(self, v: Vec2) -> Point2 {
        Point2::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vec2> for Point2 {
    fn add_assign(&mut self, v: Vec2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    fn sub(self, other: Point2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    fn mul(self, v: Vec2) -> Vec2 {
        v * self
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// A directed line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point2,
    /// End point.
    pub b: Point2,
}

impl Segment {
    /// Creates a segment from endpoints.
    pub const fn new(a: Point2, b: Point2) -> Self {
        Self { a, b }
    }

    /// Segment length.
    pub fn length(self) -> f64 {
        self.a.distance(self.b)
    }

    /// Direction vector (not normalised).
    pub fn dir(self) -> Vec2 {
        self.b - self.a
    }

    /// Proper intersection test between two segments, returning the
    /// intersection point if the open interiors cross. Collinear overlap
    /// and shared endpoints return `None` — the particle filter only needs
    /// "does this step cross a wall", and grazing contact is not a crossing.
    pub fn intersect(self, other: Segment) -> Option<Point2> {
        let r = self.dir();
        let s = other.dir();
        let denom = r.cross(s);
        if denom.abs() < 1e-12 {
            return None; // Parallel or collinear.
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        let eps = 1e-12;
        if t > eps && t < 1.0 - eps && u > eps && u < 1.0 - eps {
            Some(self.a + r * t)
        } else {
            None
        }
    }

    /// Reflects a point across the infinite line through this segment —
    /// the "image" operation of the image-method ray tracer.
    pub fn mirror_point(self, p: Point2) -> Point2 {
        let d = self.dir().normalize();
        if d == Vec2::ZERO {
            return p; // Degenerate wall; no reflection defined.
        }
        let ap = p - self.a;
        let proj = d * ap.dot(d);
        let foot = self.a + proj;
        let offset = p - foot;
        foot + (-offset)
    }

    /// Distance from a point to this segment (not the infinite line).
    pub fn distance_to_point(self, p: Point2) -> f64 {
        let d = self.dir();
        let len2 = d.norm_sqr();
        if len2 == 0.0 {
            return self.a.distance(p);
        }
        let t = ((p - self.a).dot(d) / len2).clamp(0.0, 1.0);
        (self.a + d * t).distance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn point_vector_algebra() {
        let p = Point2::new(1.0, 2.0);
        let v = Vec2::new(3.0, -1.0);
        let q = p + v;
        assert_eq!(q, Point2::new(4.0, 1.0));
        assert_eq!(q - p, v);
        assert_eq!(p.to(q), v);
        assert_eq!(p.midpoint(q), Point2::new(2.5, 1.5));
    }

    #[test]
    fn vec_norm_and_angle() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sqr(), 25.0);
        assert!((Vec2::new(0.0, 2.0).angle() - FRAC_PI_2).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalize(), Vec2::ZERO);
        assert!((v.normalize().norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0);
        let r = v.rotate(FRAC_PI_2);
        assert!((r.x).abs() < 1e-12 && (r.y - 1.0).abs() < 1e-12);
        assert_eq!(v.perp(), Vec2::new(0.0, 1.0));
        let full = v.rotate(2.0 * PI);
        assert!((full.x - 1.0).abs() < 1e-12 && full.y.abs() < 1e-12);
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn from_angle_unit() {
        for k in 0..12 {
            let t = k as f64 * PI / 6.0;
            let v = Vec2::from_angle(t);
            assert!((v.norm() - 1.0).abs() < 1e-12);
            assert!(crate::stats::angle_diff(v.angle(), t) < 1e-12);
        }
    }

    #[test]
    fn segments_crossing() {
        let s1 = Segment::new(Point2::new(0.0, 0.0), Point2::new(2.0, 2.0));
        let s2 = Segment::new(Point2::new(0.0, 2.0), Point2::new(2.0, 0.0));
        let p = s1.intersect(s2).expect("segments cross");
        assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segments_not_crossing() {
        let s1 = Segment::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
        let s2 = Segment::new(Point2::new(0.0, 1.0), Point2::new(1.0, 1.0));
        assert!(s1.intersect(s2).is_none()); // Parallel.
        let s3 = Segment::new(Point2::new(5.0, -1.0), Point2::new(5.0, 1.0));
        assert!(s1.intersect(s3).is_none()); // Out of range.
    }

    #[test]
    fn shared_endpoint_is_not_crossing() {
        let s1 = Segment::new(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
        let s2 = Segment::new(Point2::new(1.0, 0.0), Point2::new(1.0, 1.0));
        assert!(s1.intersect(s2).is_none());
    }

    #[test]
    fn mirror_point_across_axis() {
        let wall = Segment::new(Point2::new(0.0, 0.0), Point2::new(10.0, 0.0));
        let m = wall.mirror_point(Point2::new(3.0, 2.0));
        assert!((m.x - 3.0).abs() < 1e-12 && (m.y + 2.0).abs() < 1e-12);
        // Mirroring twice is the identity.
        let mm = wall.mirror_point(m);
        assert!((mm.x - 3.0).abs() < 1e-12 && (mm.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mirror_point_on_line_is_fixed() {
        let wall = Segment::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        let p = Point2::new(0.5, 0.5);
        let m = wall.mirror_point(p);
        assert!(m.distance(p) < 1e-12);
    }

    #[test]
    fn distance_to_segment() {
        let s = Segment::new(Point2::new(0.0, 0.0), Point2::new(10.0, 0.0));
        assert!((s.distance_to_point(Point2::new(5.0, 3.0)) - 3.0).abs() < 1e-12);
        assert!((s.distance_to_point(Point2::new(-3.0, 4.0)) - 5.0).abs() < 1e-12);
        let degenerate = Segment::new(Point2::ORIGIN, Point2::ORIGIN);
        assert!((degenerate.distance_to_point(Point2::new(0.0, 2.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn segment_length_and_dir() {
        let s = Segment::new(Point2::new(1.0, 1.0), Point2::new(4.0, 5.0));
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.dir(), Vec2::new(3.0, 4.0));
    }
}
