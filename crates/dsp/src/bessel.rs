//! Bessel function of the first kind, order zero.
//!
//! `J₀` is the theoretical spatial autocorrelation of a 2-D isotropic
//! diffuse field (Clarke's model): the channel correlation at displacement
//! `d` is `J₀(2πd/λ)`, so the TRRS decays as `J₀²`. The evaluation harness
//! overlays this theory curve on the measured Fig. 4 decay, and the
//! WiBall-style estimator maps its first zero to a distance.
//!
//! Implementation: the classic Abramowitz & Stegun §9.4 rational
//! approximations (|error| < 5·10⁻⁸ over ℝ), the standard choice when a
//! dependency-free `j0` is needed.

/// `J₀(x)` for any finite `x`.
pub fn j0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 8.0 {
        // Rational approximation on [0, 8); numerator and denominator
        // share the leading constant so J0(0) = 1 to double precision.
        let y = x * x;
        let p1 = 57_568_490_574.0
            + y * (-13_362_590_354.0
                + y * (651_619_640.7
                    + y * (-11_214_424.18 + y * (77_392.330_17 + y * (-184.905_245_6)))));
        let p2 = 57_568_490_411.0
            + y * (1_029_532_985.0
                + y * (9_494_680.718 + y * (59_272.648_53 + y * (267.853_271_2 + y))));
        p1 / p2
    } else {
        // A&S 9.4.3.
        let z = 8.0 / ax;
        let y = z * z;
        let xx = ax - std::f64::consts::FRAC_PI_4;
        let p1 = 1.0
            + y * (-0.109_862_862_7e-2
                + y * (0.273_451_040_7e-4 + y * (-0.207_337_063_9e-5 + y * 0.209_388_721_1e-6)));
        let p2 = -0.156_249_999_5e-1
            + y * (0.143_048_876_5e-3
                + y * (-0.691_114_765_1e-5 + y * (0.762_109_516_1e-6 + y * (-0.934_935_152e-7))));
        (std::f64::consts::FRAC_2_PI / ax).sqrt() * (xx.cos() * p1 - z * xx.sin() * p2)
    }
}

/// First positive zero of `J₀`: x ≈ 2.404826.
pub const J0_FIRST_ZERO: f64 = 2.404_825_557_695_773;

/// Theoretical TRRS (squared correlation) of an isotropic diffuse field at
/// displacement `d` metres for carrier wavelength `lambda`.
pub fn theory_trrs(d: f64, lambda: f64) -> f64 {
    let x = std::f64::consts::TAU * d / lambda;
    let j = j0(x);
    j * j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // Reference values (Abramowitz & Stegun tables).
        let cases = [
            (0.0, 1.0),
            (0.5, 0.938_469_8),
            (1.0, 0.765_197_7),
            (2.0, 0.223_890_8),
            (3.0, -0.260_051_9),
            (5.0, -0.177_596_8),
            (10.0, -0.245_935_8),
            (20.0, 0.167_024_6),
        ];
        for (x, expect) in cases {
            let got = j0(x);
            assert!(
                (got - expect).abs() < 5e-7,
                "J0({x}) = {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn even_function() {
        for x in [0.3, 1.7, 4.2, 9.9] {
            assert!((j0(x) - j0(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn first_zero_location() {
        assert!(j0(J0_FIRST_ZERO).abs() < 1e-7);
        assert!(j0(J0_FIRST_ZERO - 0.01) > 0.0);
        assert!(j0(J0_FIRST_ZERO + 0.01) < 0.0);
    }

    #[test]
    fn bounded_by_one() {
        for k in 0..200 {
            let x = k as f64 * 0.25;
            assert!(j0(x).abs() <= 1.0 + 1e-6, "J0({x})");
        }
    }

    #[test]
    fn theory_trrs_shape() {
        let lambda = 0.0517;
        assert!((theory_trrs(0.0, lambda) - 1.0).abs() < 1e-7);
        // Zero at d = first_zero·λ/2π ≈ 0.383 λ ≈ 1.98 cm.
        let d0 = J0_FIRST_ZERO * lambda / std::f64::consts::TAU;
        assert!(theory_trrs(d0, lambda) < 1e-10);
        assert!((d0 - 0.0198).abs() < 2e-4);
        // Monotone decay up to the zero.
        let mut prev = 1.0;
        for k in 1..20 {
            let d = d0 * k as f64 / 20.0;
            let v = theory_trrs(d, lambda);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }
}
