//! Smoothing and filtering primitives for noisy motion estimates.
//!
//! The RIM reckoning stage (paper §4.4) smooths instantaneous speed and
//! heading estimates before integrating them into a trajectory; the sensor
//! substrate low-passes simulated MEMS streams. All filters here operate on
//! plain `f64` slices and are allocation-light.

/// Centred moving average with window half-width `half` (full window
/// `2·half + 1`), shrinking the window near the edges so output length
/// equals input length.
pub fn moving_average(x: &[f64], half: usize) -> Vec<f64> {
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let s: f64 = x[lo..hi].iter().sum();
        out.push(s / (hi - lo) as f64);
    }
    out
}

/// Centred median filter with window half-width `half`; the window shrinks
/// at the edges. Robust to impulsive outliers such as single mis-tracked
/// alignment delays.
pub fn median_filter(x: &[f64], half: usize) -> Vec<f64> {
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    // A sorted window updated by one insertion/removal per step costs
    // O(W) memmove instead of an O(W log W) comparison sort per sample.
    // Binary search needs totally ordered contents, so inputs containing
    // NaN take the direct per-window sort below instead.
    if !x.iter().any(|v| v.is_nan()) {
        let mut win: Vec<f64> = Vec::with_capacity(2 * half + 1);
        let (mut lo, mut hi) = (0usize, 0usize);
        for i in 0..n {
            let new_lo = i.saturating_sub(half);
            let new_hi = (i + half + 1).min(n);
            while hi < new_hi {
                let v = x[hi];
                let p = win.partition_point(|&w| w < v);
                win.insert(p, v);
                hi += 1;
            }
            while lo < new_lo {
                let v = x[lo];
                let p = win.partition_point(|&w| w < v);
                win.remove(p);
                lo += 1;
            }
            let m = win.len();
            out.push(if m % 2 == 1 {
                win[m / 2]
            } else {
                0.5 * (win[m / 2 - 1] + win[m / 2])
            });
        }
        return out;
    }
    let mut buf = Vec::with_capacity(2 * half + 1);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        buf.clear();
        buf.extend_from_slice(&x[lo..hi]);
        buf.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let m = buf.len();
        let med = if m % 2 == 1 {
            buf[m / 2]
        } else {
            0.5 * (buf[m / 2 - 1] + buf[m / 2])
        };
        out.push(med);
    }
    out
}

/// First-order exponential smoother `y[i] = α·x[i] + (1-α)·y[i-1]`.
///
/// # Panics
/// Panics unless `0 < alpha <= 1`.
pub fn exponential_smooth(x: &[f64], alpha: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let mut out = Vec::with_capacity(x.len());
    let mut state = match x.first() {
        Some(&v) => v,
        None => return out,
    };
    out.push(state);
    for &v in &x[1..] {
        state = alpha * v + (1.0 - alpha) * state;
        out.push(state);
    }
    out
}

/// Savitzky–Golay smoothing: least-squares fit of a polynomial of degree
/// `degree` over a centred window of half-width `half`, evaluated at the
/// centre point. Preserves low-order moments (peak heights) far better than
/// a box filter, which matters when smoothing speed profiles containing
/// genuine accelerations.
///
/// The window shrinks near the edges (falling back to the widest window
/// that fits, and to a plain average when the window cannot support the
/// requested degree).
///
/// # Panics
/// Panics if `degree` is 0 and `half` is 0 simultaneously is fine; panics
/// only on internal solver failure, which cannot happen for well-formed
/// Vandermonde systems of the sizes used here.
pub fn savitzky_golay(x: &[f64], half: usize, degree: usize) -> Vec<f64> {
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    // The window offsets — and therefore the offset powers and the normal
    // matrix A[j][k] = Σ t^(j+k) — depend only on the window's *shape*
    // (centre position within it, width, fitted degree). Every interior
    // sample shares one shape, so the powers and A are rebuilt only at
    // the edges; per sample only the rhs b[j] = Σ y·t^j re-accumulates.
    // Accumulation order matches the per-sample rebuild exactly, so the
    // output is bit-identical to recomputing everything each sample.
    let mut shape = (usize::MAX, 0usize, 0usize); // (i − lo, width, deg)
    let mut powers: Vec<Vec<f64>> = Vec::new();
    let mut a0: Vec<Vec<f64>> = Vec::new();
    let mut a: Vec<Vec<f64>> = Vec::new();
    let mut b: Vec<f64> = Vec::new();
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let window = &x[lo..hi];
        let deg = degree.min(window.len().saturating_sub(1));
        let m = deg + 1;
        if shape != (i - lo, hi - lo, deg) {
            shape = (i - lo, hi - lo, deg);
            // Fit p(t) = Σ c_k t^k over t = (index − i); powers t^0..t^(2m−2).
            powers = (lo..hi)
                .map(|j| {
                    let t = j as f64 - i as f64;
                    let mut tp = vec![1.0; 2 * m - 1];
                    for p in 1..2 * m - 1 {
                        tp[p] = tp[p - 1] * t;
                    }
                    tp
                })
                .collect();
            a0 = vec![vec![0.0; m]; m];
            for tp in &powers {
                for j in 0..m {
                    for k in 0..m {
                        a0[j][k] += tp[j + k];
                    }
                }
            }
            a = vec![vec![0.0; m]; m];
            b = vec![0.0; m];
        }
        for (dst, src) in a.iter_mut().zip(&a0) {
            dst.copy_from_slice(src);
        }
        b.fill(0.0);
        for (tp, &y) in powers.iter().zip(window) {
            for j in 0..m {
                b[j] += y * tp[j];
            }
        }
        // Evaluate the fit at t = 0 → the constant coefficient.
        out.push(solve_linear(&mut a, &mut b)[0]);
    }
    out
}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
/// `a` and `b` are consumed as scratch space.
fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let piv = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap();
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        if d.abs() < 1e-300 {
            continue; // Degenerate; leave row as-is (coefficient stays 0).
        }
        for row in col + 1..n {
            let f = a[row][col] / d;
            if f == 0.0 {
                continue;
            }
            // Split borrow: the pivot row is read while `row` is written.
            let (pivot_row, rest) = {
                let (head, tail) = a.split_at_mut(col + 1);
                (&head[col], &mut tail[row - col - 1])
            };
            for (dst, &src) in rest[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *dst -= f * src;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in col + 1..n {
            s -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-300 {
            0.0
        } else {
            s / a[col][col]
        };
    }
    x
}

/// Simple single-pole low-pass filter parameterised by cut-off frequency
/// and sample rate — used by the sensor substrate to band-limit MEMS noise.
pub fn low_pass(x: &[f64], cutoff_hz: f64, sample_rate_hz: f64) -> Vec<f64> {
    assert!(cutoff_hz > 0.0 && sample_rate_hz > 0.0);
    let rc = 1.0 / (std::f64::consts::TAU * cutoff_hz);
    let dt = 1.0 / sample_rate_hz;
    let alpha = dt / (rc + dt);
    exponential_smooth(x, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_constant_is_identity() {
        let x = vec![3.5; 10];
        for half in 0..4 {
            let y = moving_average(&x, half);
            assert!(y.iter().all(|&v| (v - 3.5).abs() < 1e-12));
        }
    }

    #[test]
    fn moving_average_window_zero_is_identity() {
        let x = [1.0, 2.0, -3.0];
        assert_eq!(moving_average(&x, 0), x.to_vec());
    }

    #[test]
    fn moving_average_hand_example() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = moving_average(&x, 1);
        assert!((y[0] - 1.5).abs() < 1e-12);
        assert!((y[1] - 2.0).abs() < 1e-12);
        assert!((y[2] - 3.0).abs() < 1e-12);
        assert!((y[3] - 3.5).abs() < 1e-12);
    }

    #[test]
    fn median_filter_removes_impulse() {
        let mut x = vec![1.0; 11];
        x[5] = 100.0;
        let y = median_filter(&x, 1);
        assert!((y[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_filter_even_window_at_edge() {
        let x = [1.0, 3.0];
        let y = median_filter(&x, 1);
        // Both positions see the full 2-element window → median 2.0.
        assert!((y[0] - 2.0).abs() < 1e-12);
        assert!((y[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_smooth_alpha_one_is_identity() {
        let x = [1.0, -2.0, 4.0];
        assert_eq!(exponential_smooth(&x, 1.0), x.to_vec());
    }

    #[test]
    fn exponential_smooth_converges_to_constant() {
        let x = vec![5.0; 200];
        let y = exponential_smooth(&x, 0.1);
        assert!((y[199] - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn exponential_smooth_rejects_bad_alpha() {
        let _ = exponential_smooth(&[1.0], 0.0);
    }

    #[test]
    fn savgol_preserves_polynomial() {
        // A quadratic must pass through a degree-2 SG filter unchanged.
        let x: Vec<f64> = (0..40)
            .map(|k| {
                let t = k as f64;
                0.5 * t * t - 3.0 * t + 2.0
            })
            .collect();
        let y = savitzky_golay(&x, 4, 2);
        for (u, v) in x.iter().zip(&y) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn savgol_smooths_noise() {
        // Deterministic pseudo-noise around a line.
        let x: Vec<f64> = (0..100)
            .map(|k| k as f64 * 0.1 + ((k * 7919 % 100) as f64 / 100.0 - 0.5))
            .collect();
        let y = savitzky_golay(&x, 6, 2);
        let rough: f64 = x.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        let smooth: f64 = y.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        assert!(smooth < rough * 0.6, "rough {rough} smooth {smooth}");
    }

    #[test]
    fn low_pass_attenuates_high_frequency() {
        let fs = 200.0;
        let slow: Vec<f64> = (0..400)
            .map(|k| (k as f64 / fs * std::f64::consts::TAU * 1.0).sin())
            .collect();
        let fast: Vec<f64> = (0..400)
            .map(|k| (k as f64 / fs * std::f64::consts::TAU * 50.0).sin())
            .collect();
        let ys = low_pass(&slow, 5.0, fs);
        let yf = low_pass(&fast, 5.0, fs);
        let amp = |v: &[f64]| v[100..].iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(amp(&ys) > 0.7, "slow signal should pass: {}", amp(&ys));
        assert!(
            amp(&yf) < 0.3,
            "fast signal should be attenuated: {}",
            amp(&yf)
        );
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(moving_average(&[], 3).is_empty());
        assert!(median_filter(&[], 3).is_empty());
        assert!(exponential_smooth(&[], 0.5).is_empty());
        assert!(savitzky_golay(&[], 3, 2).is_empty());
    }
}
