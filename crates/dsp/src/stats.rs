//! Descriptive statistics, quantiles, empirical CDFs, linear regression and
//! circular (angular) statistics.
//!
//! The evaluation harness reports medians, percentiles and CDF curves for
//! every experiment (paper Figs. 11–17); the CSI sanitation step fits and
//! removes a linear phase slope; heading errors are circular quantities.

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Unbiased sample variance; `NaN` for fewer than two samples.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return f64::NAN;
    }
    let m = mean(x);
    x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

/// Sample standard deviation; `NaN` for fewer than two samples.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Root mean square; `NaN` for an empty slice.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    (x.iter().map(|&v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Quantile `q ∈ [0, 1]` by linear interpolation between order statistics
/// (the common "type 7" estimator). `NaN` for an empty slice.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(x: &[f64], q: f64) -> f64 {
    quantile_with(x, q, &mut Vec::new())
}

/// [`quantile`] with a caller-provided scratch buffer, for hot loops that
/// take many quantiles of same-sized slices (the per-call sort allocation
/// otherwise dominates). Identical result to [`quantile`].
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile_with(x: &[f64], q: f64, scratch: &mut Vec<f64>) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if x.is_empty() {
        return f64::NAN;
    }
    scratch.clear();
    scratch.extend_from_slice(x);
    scratch.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let s = &scratch[..];
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let t = pos - lo as f64;
        s[lo] * (1.0 - t) + s[hi] * t
    }
}

/// Median (50th percentile).
pub fn median(x: &[f64]) -> f64 {
    quantile(x, 0.5)
}

/// Maximum; `NaN` for an empty slice. Ignores `NaN` elements.
pub fn max(x: &[f64]) -> f64 {
    x.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(f64::NAN, |a, b| if a.is_nan() || b > a { b } else { a })
}

/// Minimum; `NaN` for an empty slice. Ignores `NaN` elements.
pub fn min(x: &[f64]) -> f64 {
    x.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(f64::NAN, |a, b| if a.is_nan() || b < a { b } else { a })
}

/// An empirical CDF: sorted sample values paired with cumulative
/// probabilities, suitable for printing the CDF curves in the paper's
/// figures.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of a sample. `NaN`s are dropped.
    pub fn new(x: &[f64]) -> Self {
        let mut sorted: Vec<f64> = x.iter().copied().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self { sorted }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ v)`.
    pub fn prob_at(&self, v: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let count = self.sorted.partition_point(|&s| s <= v);
        count as f64 / self.sorted.len() as f64
    }

    /// Value at probability `q` (inverse CDF / quantile).
    pub fn value_at(&self, q: f64) -> f64 {
        quantile(&self.sorted, q)
    }

    /// Evaluates the CDF on `n` evenly spaced points spanning the sample
    /// range, returning `(value, probability)` rows for plotting.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap();
        (0..n)
            .map(|k| {
                let v = if n == 1 {
                    hi
                } else {
                    lo + (hi - lo) * k as f64 / (n - 1) as f64
                };
                (v, self.prob_at(v))
            })
            .collect()
    }
}

/// Ordinary least-squares fit `y ≈ slope·x + intercept`.
/// Returns `(slope, intercept)`; `(NaN, NaN)` for fewer than two points or
/// degenerate (constant) abscissae.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    if xs.len() != ys.len() || xs.len() < 2 {
        return (f64::NAN, f64::NAN);
    }
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|&v| v * v).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(&a, &b)| a * b).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-300 {
        return (f64::NAN, f64::NAN);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

/// Wraps an angle to `(-π, π]`.
pub fn wrap_angle(theta: f64) -> f64 {
    let mut t = theta % std::f64::consts::TAU;
    if t > std::f64::consts::PI {
        t -= std::f64::consts::TAU;
    } else if t <= -std::f64::consts::PI {
        t += std::f64::consts::TAU;
    }
    t
}

/// Smallest absolute angular difference between two angles, in `[0, π]`.
pub fn angle_diff(a: f64, b: f64) -> f64 {
    wrap_angle(a - b).abs()
}

/// Circular mean of angles (radians); `NaN` for an empty slice or when the
/// resultant vector vanishes (perfectly dispersed input).
pub fn circular_mean(angles: &[f64]) -> f64 {
    if angles.is_empty() {
        return f64::NAN;
    }
    let (s, c) = angles
        .iter()
        .fold((0.0, 0.0), |(s, c), &a| (s + a.sin(), c + a.cos()));
    if s.abs() < 1e-12 && c.abs() < 1e-12 {
        return f64::NAN;
    }
    s.atan2(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn mean_and_variance() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-12);
        assert!((variance(&x) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(rms(&[]).is_nan());
        assert!(median(&[]).is_nan());
        assert!(max(&[]).is_nan());
        assert!(min(&[]).is_nan());
    }

    #[test]
    fn quantile_interpolates() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&x, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&x, 1.0) - 4.0).abs() < 1e-12);
        assert!((median(&x) - 2.5).abs() < 1e-12);
        assert!((quantile(&x, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let x = [9.0, 1.0, 5.0];
        assert!((median(&x) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn ecdf_probabilities() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert!((e.prob_at(0.5) - 0.0).abs() < 1e-12);
        assert!((e.prob_at(2.0) - 0.5).abs() < 1e-12);
        assert!((e.prob_at(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn ecdf_drops_nan() {
        let e = Ecdf::new(&[1.0, f64::NAN, 3.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn ecdf_curve_monotone() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        let curve = e.curve(20);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_value_at_inverts_prob() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((e.value_at(0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..50).map(|k| k as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.5 * x - 7.0).collect();
        let (m, b) = linear_fit(&xs, &ys);
        assert!((m - 2.5).abs() < 1e-9);
        assert!((b + 7.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_is_nan() {
        let (m, b) = linear_fit(&[1.0, 1.0], &[0.0, 5.0]);
        assert!(m.is_nan() && b.is_nan());
        let (m, b) = linear_fit(&[1.0], &[1.0]);
        assert!(m.is_nan() && b.is_nan());
    }

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(0.5) - 0.5).abs() < 1e-12);
        for k in -10..10 {
            let t = wrap_angle(k as f64 * 1.7);
            assert!(t > -PI - 1e-12 && t <= PI + 1e-12);
        }
    }

    #[test]
    fn angle_diff_shortest_path() {
        assert!((angle_diff(0.1, -0.1) - 0.2).abs() < 1e-12);
        assert!((angle_diff(PI - 0.05, -PI + 0.05) - 0.1).abs() < 1e-12);
        assert!((angle_diff(0.0, PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn circular_mean_wraps() {
        let m = circular_mean(&[PI - 0.1, -PI + 0.1]);
        assert!(
            angle_diff(m, PI) < 1e-9,
            "mean of angles near ±π is π, got {m}"
        );
        assert!(circular_mean(&[]).is_nan());
        assert!(circular_mean(&[0.0, PI]).is_nan());
    }
}
