//! Fast Fourier transforms.
//!
//! Provides an iterative radix-2 Cooley–Tukey FFT for power-of-two lengths
//! and a Bluestein (chirp-z) fallback for arbitrary lengths, so callers can
//! transform CSI vectors of any subcarrier count (e.g. the 114 usable
//! subcarriers of a 40 MHz 802.11n channel) without padding decisions
//! leaking into the signal path.
//!
//! Conventions: `fft` computes `X[k] = Σ_n x[n]·e^{-2πi·kn/N}` (no scaling);
//! `ifft` applies the `1/N` factor so `ifft(fft(x)) == x`.

use crate::complex::{Complex64, ZERO};

/// Returns true if `n` is a power of two (and nonzero).
#[inline]
fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place bit-reversal permutation.
fn bit_reverse_permute(x: &mut [Complex64]) {
    let n = x.len();
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            x.swap(i, j);
        }
        let mut mask = n >> 1;
        while mask > 0 && j & mask != 0 {
            j &= !mask;
            mask >>= 1;
        }
        j |= mask;
    }
}

/// In-place radix-2 FFT. `x.len()` must be a power of two.
/// `inverse` selects the conjugate transform (without the 1/N scale).
fn fft_pow2_in_place(x: &mut [Complex64], inverse: bool) {
    let n = x.len();
    debug_assert!(is_pow2(n));
    bit_reverse_permute(x);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex64::cis(ang);
        for chunk in x.chunks_exact_mut(len) {
            let mut w = Complex64::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Bluestein's algorithm: expresses an arbitrary-length DFT as a
/// convolution, evaluated with a power-of-two FFT.
fn bluestein(x: &[Complex64], inverse: bool) -> Vec<Complex64> {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // chirp[k] = e^{sign·πi·k²/n}; use k² mod 2n to keep the angle bounded.
    let chirp: Vec<Complex64> = (0..n)
        .map(|k| {
            let k2 = (k as u128 * k as u128 % (2 * n as u128)) as f64;
            Complex64::cis(sign * std::f64::consts::PI * k2 / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![ZERO; m];
    let mut b = vec![ZERO; m];
    for k in 0..n {
        a[k] = x[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    // b is symmetric: b[m - k] = b[k] for k = 1..n.
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    fft_pow2_in_place(&mut a, false);
    fft_pow2_in_place(&mut b, false);
    for (ai, bi) in a.iter_mut().zip(&b) {
        *ai *= *bi;
    }
    fft_pow2_in_place(&mut a, true);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| a[k] * chirp[k] * scale).collect()
}

/// Forward DFT of arbitrary length.
///
/// Power-of-two lengths use the radix-2 path; other lengths use Bluestein.
/// An empty input returns an empty output.
///
/// ```
/// use rim_dsp::complex::Complex64;
/// use rim_dsp::fft::{fft, ifft};
///
/// // Works for non-power-of-two lengths (e.g. 114 subcarriers).
/// let x: Vec<Complex64> = (0..114).map(|k| Complex64::new(k as f64, 0.0)).collect();
/// let y = ifft(&fft(&x));
/// assert!(x.iter().zip(&y).all(|(a, b)| (*a - *b).abs() < 1e-8));
/// ```
pub fn fft(x: &[Complex64]) -> Vec<Complex64> {
    match x.len() {
        0 => Vec::new(),
        n if is_pow2(n) => {
            let mut y = x.to_vec();
            fft_pow2_in_place(&mut y, false);
            y
        }
        _ => bluestein(x, false),
    }
}

/// Inverse DFT of arbitrary length, scaled by `1/N` so that
/// `ifft(fft(x)) == x` up to rounding.
pub fn ifft(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let mut y = if is_pow2(n) {
        let mut y = x.to_vec();
        fft_pow2_in_place(&mut y, true);
        y
    } else {
        bluestein(x, true)
    };
    let scale = 1.0 / n as f64;
    for z in &mut y {
        *z = z.scale(scale);
    }
    y
}

/// Naive `O(N²)` DFT, used as a reference in tests and for very short inputs
/// where FFT set-up overhead dominates.
pub fn dft_naive(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = ZERO;
            for (j, &v) in x.iter().enumerate() {
                let ang = -std::f64::consts::TAU * (k * j % n) as f64 / n as f64;
                acc += v * Complex64::cis(ang);
            }
            acc
        })
        .collect()
}

/// Converts a channel frequency response (CFR) to a channel impulse
/// response (CIR) via the inverse DFT.
pub fn cfr_to_cir(cfr: &[Complex64]) -> Vec<Complex64> {
    ifft(cfr)
}

/// Converts a channel impulse response back to a frequency response.
pub fn cir_to_cfr(cir: &[Complex64]) -> Vec<Complex64> {
    fft(cir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::norm_sqr;

    fn assert_vec_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol,
                "index {i}: {x:?} vs {y:?} (diff {})",
                (x - y).abs()
            );
        }
    }

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|k| Complex64::new(k as f64 * 0.7 - 1.0, (k as f64).sin()))
            .collect()
    }

    #[test]
    fn empty_input() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
    }

    #[test]
    fn single_element_is_identity() {
        let x = [Complex64::new(2.0, -3.0)];
        assert_vec_close(&fft(&x), &x, 1e-12);
        assert_vec_close(&ifft(&x), &x, 1e-12);
    }

    #[test]
    fn matches_naive_dft_pow2() {
        for n in [2usize, 4, 8, 64] {
            let x = ramp(n);
            assert_vec_close(&fft(&x), &dft_naive(&x), 1e-8);
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary() {
        for n in [3usize, 5, 7, 12, 57, 114] {
            let x = ramp(n);
            assert_vec_close(&fft(&x), &dft_naive(&x), 1e-8);
        }
    }

    #[test]
    fn round_trip_pow2_and_arbitrary() {
        for n in [1usize, 2, 16, 30, 114, 128] {
            let x = ramp(n);
            assert_vec_close(&ifft(&fft(&x)), &x, 1e-9);
            assert_vec_close(&fft(&ifft(&x)), &x, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        for n in [8usize, 57, 114] {
            let x = ramp(n);
            let y = fft(&x);
            let ex = norm_sqr(&x);
            let ey = norm_sqr(&y) / n as f64;
            assert!((ex - ey).abs() < 1e-8 * ex.max(1.0), "n={n}: {ex} vs {ey}");
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![ZERO; 16];
        x[0] = Complex64::new(1.0, 0.0);
        let y = fft(&x);
        for &v in &y {
            assert!((v - Complex64::new(1.0, 0.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn delayed_impulse_has_linear_phase() {
        let n = 32;
        let d = 5;
        let mut x = vec![ZERO; n];
        x[d] = Complex64::new(1.0, 0.0);
        let y = fft(&x);
        for (k, &v) in y.iter().enumerate() {
            let expect = Complex64::cis(-std::f64::consts::TAU * (k * d) as f64 / n as f64);
            assert!((v - expect).abs() < 1e-10);
        }
    }

    #[test]
    fn cfr_cir_round_trip() {
        let cfr = ramp(114);
        let cir = cfr_to_cir(&cfr);
        assert_vec_close(&cir_to_cfr(&cir), &cfr, 1e-9);
    }

    #[test]
    fn linearity() {
        let n = 24;
        let x = ramp(n);
        let y: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new(1.0, k as f64 * 0.1))
            .collect();
        let a = Complex64::new(0.5, -1.5);
        let combo: Vec<Complex64> = x.iter().zip(&y).map(|(&u, &v)| a * u + v).collect();
        let lhs = fft(&combo);
        let fx = fft(&x);
        let fy = fft(&y);
        let rhs: Vec<Complex64> = fx.iter().zip(&fy).map(|(&u, &v)| a * u + v).collect();
        assert_vec_close(&lhs, &rhs, 1e-9);
    }
}
