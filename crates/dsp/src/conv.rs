//! Linear convolution and correlation.
//!
//! The time-domain form of the TRRS (paper Eqn. 1) is a linear convolution
//! of one CIR with the time-reversed conjugate of another; this module
//! provides both a direct `O(N·M)` implementation and an FFT-accelerated one
//! with identical semantics, plus cross-correlation helpers used by tests
//! and by the sensor substrate.

use crate::complex::{Complex64, ZERO};
use crate::fft::{fft, ifft};

/// Direct (schoolbook) linear convolution.
///
/// Output length is `x.len() + y.len() - 1`; an empty input yields an empty
/// output.
pub fn convolve_direct(x: &[Complex64], y: &[Complex64]) -> Vec<Complex64> {
    if x.is_empty() || y.is_empty() {
        return Vec::new();
    }
    let n = x.len() + y.len() - 1;
    let mut out = vec![ZERO; n];
    for (i, &a) in x.iter().enumerate() {
        for (j, &b) in y.iter().enumerate() {
            out[i + j] = a.mul_add(b, out[i + j]);
        }
    }
    out
}

/// FFT-based linear convolution; identical output to [`convolve_direct`]
/// up to rounding, `O((N+M)·log(N+M))`.
pub fn convolve_fft(x: &[Complex64], y: &[Complex64]) -> Vec<Complex64> {
    if x.is_empty() || y.is_empty() {
        return Vec::new();
    }
    let n = x.len() + y.len() - 1;
    let m = n.next_power_of_two();
    let mut a = vec![ZERO; m];
    let mut b = vec![ZERO; m];
    a[..x.len()].copy_from_slice(x);
    b[..y.len()].copy_from_slice(y);
    let fa = fft(&a);
    let fb = fft(&b);
    let prod: Vec<Complex64> = fa.iter().zip(&fb).map(|(&u, &v)| u * v).collect();
    let mut out = ifft(&prod);
    out.truncate(n);
    out
}

/// Linear convolution, choosing the direct path for short inputs and the
/// FFT path for long ones.
pub fn convolve(x: &[Complex64], y: &[Complex64]) -> Vec<Complex64> {
    // The crossover is approximate; both paths are exact.
    if x.len().saturating_mul(y.len()) <= 4096 {
        convolve_direct(x, y)
    } else {
        convolve_fft(x, y)
    }
}

/// Time-reverses and conjugates a vector: `g[k] = h*[T-1-k]` — the
/// time-reversal operator `g₂` from paper Eqn. 1.
pub fn time_reverse_conjugate(h: &[Complex64]) -> Vec<Complex64> {
    h.iter().rev().map(|z| z.conj()).collect()
}

/// Full cross-correlation of real-valued sequences.
///
/// `out[k]` for `k in 0..(x.len() + y.len() - 1)` equals
/// `Σ_n x[n] · y[n - (k - (y.len()-1))]`, i.e. lag runs from
/// `-(y.len()-1)` to `x.len()-1`.
pub fn xcorr_real(x: &[f64], y: &[f64]) -> Vec<f64> {
    if x.is_empty() || y.is_empty() {
        return Vec::new();
    }
    let n = x.len() + y.len() - 1;
    let mut out = vec![0.0; n];
    for (i, &a) in x.iter().enumerate() {
        for (j, &b) in y.iter().enumerate() {
            out[i + (y.len() - 1 - j)] += a * b;
        }
    }
    out
}

/// Lag (in samples) of the maximum of the cross-correlation of `x` and `y`.
/// Positive lag means `x` is delayed relative to `y`. Returns `None` for
/// empty inputs.
pub fn xcorr_peak_lag(x: &[f64], y: &[f64]) -> Option<isize> {
    if x.is_empty() || y.is_empty() {
        return None;
    }
    let c = xcorr_real(x, y);
    let (idx, _) = c
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
    Some(idx as isize - (y.len() as isize - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex64 {
        Complex64::from_re(re)
    }

    #[test]
    fn direct_matches_hand_computed() {
        let x = [c(1.0), c(2.0), c(3.0)];
        let y = [c(1.0), c(1.0)];
        let out = convolve_direct(&x, &y);
        let expect = [1.0, 3.0, 5.0, 3.0];
        assert_eq!(out.len(), expect.len());
        for (o, e) in out.iter().zip(expect) {
            assert!((o.re - e).abs() < 1e-12 && o.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_matches_direct() {
        let x: Vec<Complex64> = (0..37)
            .map(|k| Complex64::new((k as f64).cos(), (k as f64 * 0.3).sin()))
            .collect();
        let y: Vec<Complex64> = (0..23)
            .map(|k| Complex64::new(k as f64 * 0.1, -(k as f64) * 0.05))
            .collect();
        let a = convolve_direct(&x, &y);
        let b = convolve_fft(&x, &y);
        assert_eq!(a.len(), b.len());
        for (u, v) in a.iter().zip(&b) {
            assert!((*u - *v).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(convolve(&[], &[c(1.0)]).is_empty());
        assert!(convolve(&[c(1.0)], &[]).is_empty());
        assert!(xcorr_real(&[], &[1.0]).is_empty());
        assert_eq!(xcorr_peak_lag(&[], &[1.0]), None);
    }

    #[test]
    fn convolution_commutes() {
        let x = [c(1.0), c(-2.0), c(0.5)];
        let y = [c(3.0), c(1.0), c(4.0), c(1.0)];
        let a = convolve(&x, &y);
        let b = convolve(&y, &x);
        for (u, v) in a.iter().zip(&b) {
            assert!((*u - *v).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_kernel() {
        let x = [c(5.0), c(-1.0), c(2.0)];
        let out = convolve(&x, &[c(1.0)]);
        for (u, v) in out.iter().zip(&x) {
            assert!((*u - *v).abs() < 1e-12);
        }
    }

    #[test]
    fn time_reverse_conjugate_matches_definition() {
        let h = [Complex64::new(1.0, 2.0), Complex64::new(3.0, -4.0)];
        let g = time_reverse_conjugate(&h);
        assert_eq!(g[0], Complex64::new(3.0, 4.0));
        assert_eq!(g[1], Complex64::new(1.0, -2.0));
        // Involution: applying twice gives back the original.
        let gg = time_reverse_conjugate(&g);
        assert_eq!(&gg[..], &h[..]);
    }

    #[test]
    fn xcorr_detects_shift() {
        let base: Vec<f64> = (0..50).map(|k| ((k as f64) * 0.3).sin()).collect();
        let mut shifted = vec![0.0; 7];
        shifted.extend_from_slice(&base);
        // `shifted` is `base` delayed by 7 samples.
        assert_eq!(xcorr_peak_lag(&shifted, &base), Some(7));
        assert_eq!(xcorr_peak_lag(&base, &shifted), Some(-7));
    }

    #[test]
    fn xcorr_zero_lag_is_energy() {
        let x = [1.0, -2.0, 3.0];
        let c = xcorr_real(&x, &x);
        // Zero lag sits at index len-1.
        assert!((c[2] - 14.0).abs() < 1e-12);
    }
}
