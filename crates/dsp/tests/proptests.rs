//! Property-based tests of the DSP substrate.

use proptest::prelude::*;
use rim_dsp::complex::{inner_product, norm_sqr, Complex64};
use rim_dsp::conv::{convolve_direct, convolve_fft};
use rim_dsp::fft::{dft_naive, fft, ifft};
use rim_dsp::filter::{median_filter, moving_average};
use rim_dsp::geom::{Point2, Segment};
use rim_dsp::interp::fill_gaps_complex;
use rim_dsp::stats::{angle_diff, quantile, wrap_angle};

fn complex_vec(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec(
        (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(re, im)| Complex64::new(re, im)),
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_matches_naive(x in complex_vec(48)) {
        let a = fft(&x);
        let b = dft_naive(&x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((*u - *v).abs() < 1e-6 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn fft_round_trip(x in complex_vec(64)) {
        let y = ifft(&fft(&x));
        for (u, v) in x.iter().zip(&y) {
            prop_assert!((*u - *v).abs() < 1e-7 * (1.0 + u.abs()));
        }
    }

    #[test]
    fn parseval(x in complex_vec(64)) {
        let y = fft(&x);
        let ex = norm_sqr(&x);
        let ey = norm_sqr(&y) / x.len() as f64;
        prop_assert!((ex - ey).abs() < 1e-6 * (1.0 + ex));
    }

    #[test]
    fn convolution_fft_equals_direct(
        x in complex_vec(24),
        y in complex_vec(24),
    ) {
        let a = convolve_direct(&x, &y);
        let b = convolve_fft(&x, &y);
        prop_assert_eq!(a.len(), b.len());
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((*u - *v).abs() < 1e-6 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn convolution_commutes(x in complex_vec(16), y in complex_vec(16)) {
        let a = convolve_direct(&x, &y);
        let b = convolve_direct(&y, &x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((*u - *v).abs() < 1e-8 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn inner_product_cauchy_schwarz(x in complex_vec(32), y in complex_vec(32)) {
        let n = x.len().min(y.len());
        let ip = inner_product(&x[..n], &y[..n]).abs();
        let bound = (norm_sqr(&x[..n]) * norm_sqr(&y[..n])).sqrt();
        prop_assert!(ip <= bound * (1.0 + 1e-9));
    }

    #[test]
    fn wrap_angle_in_range_and_idempotent(theta in -1e3f64..1e3) {
        let w = wrap_angle(theta);
        prop_assert!(w > -std::f64::consts::PI - 1e-9 && w <= std::f64::consts::PI + 1e-9);
        prop_assert!((wrap_angle(w) - w).abs() < 1e-9);
        // Wrapping preserves the angle modulo 2π.
        prop_assert!(angle_diff(w, theta) < 1e-6);
    }

    #[test]
    fn quantile_within_sample_bounds(
        mut xs in prop::collection::vec(-1e6f64..1e6, 1..50),
        q in 0.0f64..1.0,
    ) {
        let v = quantile(&xs, q);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(v >= xs[0] - 1e-9 && v <= xs[xs.len() - 1] + 1e-9);
    }

    #[test]
    fn moving_average_bounded_by_extremes(
        xs in prop::collection::vec(-100.0f64..100.0, 1..40),
        half in 0usize..5,
    ) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in moving_average(&xs, half) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn median_filter_output_is_sample_value_or_midpoint(
        xs in prop::collection::vec(-10.0f64..10.0, 1..30),
        half in 0usize..4,
    ) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in median_filter(&xs, half) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn fill_gaps_preserves_present_samples(
        xs in prop::collection::vec(
            prop::option::weighted(0.7, (-10.0f64..10.0, -10.0f64..10.0)
                .prop_map(|(re, im)| Complex64::new(re, im))),
            1..30,
        ),
    ) {
        if let Some(filled) = fill_gaps_complex(&xs) {
            prop_assert_eq!(filled.len(), xs.len());
            for (f, x) in filled.iter().zip(&xs) {
                if let Some(v) = x {
                    prop_assert!((*f - *v).abs() < 1e-12);
                }
            }
        } else {
            prop_assert!(xs.iter().all(|v| v.is_none()));
        }
    }

    #[test]
    fn segment_intersection_is_symmetric(
        ax in -10.0f64..10.0, ay in -10.0f64..10.0,
        bx in -10.0f64..10.0, by in -10.0f64..10.0,
        cx in -10.0f64..10.0, cy in -10.0f64..10.0,
        dx in -10.0f64..10.0, dy in -10.0f64..10.0,
    ) {
        let s1 = Segment::new(Point2::new(ax, ay), Point2::new(bx, by));
        let s2 = Segment::new(Point2::new(cx, cy), Point2::new(dx, dy));
        match (s1.intersect(s2), s2.intersect(s1)) {
            (Some(p), Some(q)) => prop_assert!(p.distance(q) < 1e-6),
            (None, None) => {}
            (a, b) => prop_assert!(false, "asymmetric intersection: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn mirror_is_involution(
        ax in -10.0f64..10.0, ay in -10.0f64..10.0,
        bx in -10.0f64..10.0, by in -10.0f64..10.0,
        px in -10.0f64..10.0, py in -10.0f64..10.0,
    ) {
        prop_assume!((ax - bx).abs() > 1e-6 || (ay - by).abs() > 1e-6);
        let wall = Segment::new(Point2::new(ax, ay), Point2::new(bx, by));
        let p = Point2::new(px, py);
        let pp = wall.mirror_point(wall.mirror_point(p));
        prop_assert!(pp.distance(p) < 1e-6);
    }
}
