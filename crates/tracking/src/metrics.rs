//! Error metrics for trajectory and motion evaluation.
//!
//! These are the measures the paper reports: distance error (Figs. 11,
//! 14–17), heading error (Fig. 12), rotation error (Fig. 13) and the
//! minimum-projection trajectory error of the handwriting study (§6.3.1:
//! "we approximate the tracking error as the minimum projection distance
//! from the estimated location to the trajectory").

use rim_dsp::geom::{Point2, Segment};
use rim_dsp::stats::angle_diff;

/// Absolute moving-distance error, metres.
pub fn distance_error(estimated_m: f64, truth_m: f64) -> f64 {
    (estimated_m - truth_m).abs()
}

/// Relative distance error (fraction of the true distance).
pub fn relative_distance_error(estimated_m: f64, truth_m: f64) -> f64 {
    if truth_m == 0.0 {
        return f64::NAN;
    }
    (estimated_m - truth_m).abs() / truth_m
}

/// Heading error: smallest angular difference, radians.
pub fn heading_error(estimated: f64, truth: f64) -> f64 {
    angle_diff(estimated, truth)
}

/// Rotation-angle error, radians (signed angles compared directly; a
/// missed rotation scores the full true magnitude).
pub fn rotation_error(estimated: f64, truth: f64) -> f64 {
    (estimated - truth).abs()
}

/// Minimum distance from a point to a polyline.
pub fn point_to_polyline(p: Point2, polyline: &[Point2]) -> f64 {
    if polyline.is_empty() {
        return f64::NAN;
    }
    if polyline.len() == 1 {
        return p.distance(polyline[0]);
    }
    polyline
        .windows(2)
        .map(|w| Segment::new(w[0], w[1]).distance_to_point(p))
        .fold(f64::INFINITY, f64::min)
}

/// Mean minimum-projection error of an estimated track against a
/// ground-truth polyline — the handwriting/trajectory metric of §6.3.1.
pub fn mean_projection_error(estimate: &[Point2], truth: &[Point2]) -> f64 {
    if estimate.is_empty() {
        return f64::NAN;
    }
    estimate
        .iter()
        .map(|&p| point_to_polyline(p, truth))
        .sum::<f64>()
        / estimate.len() as f64
}

/// Per-sample position errors against a time-aligned ground-truth track
/// (both sampled at the same instants).
///
/// # Panics
/// Panics on length mismatch.
pub fn pointwise_errors(estimate: &[Point2], truth: &[Point2]) -> Vec<f64> {
    assert_eq!(estimate.len(), truth.len(), "tracks must be time-aligned");
    estimate
        .iter()
        .zip(truth)
        .map(|(a, b)| a.distance(*b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_errors() {
        assert!((distance_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((relative_distance_error(1.1, 1.0) - 0.1).abs() < 1e-9);
        assert!(relative_distance_error(1.0, 0.0).is_nan());
    }

    #[test]
    fn heading_error_wraps() {
        let e = heading_error(179f64.to_radians(), -179f64.to_radians());
        assert!((e.to_degrees() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn point_to_polyline_cases() {
        let line = [Point2::new(0.0, 0.0), Point2::new(10.0, 0.0)];
        assert!((point_to_polyline(Point2::new(5.0, 2.0), &line) - 2.0).abs() < 1e-12);
        assert!((point_to_polyline(Point2::new(-3.0, 4.0), &line) - 5.0).abs() < 1e-12);
        assert!((point_to_polyline(Point2::new(1.0, 0.0), &[Point2::ORIGIN]) - 1.0).abs() < 1e-12);
        assert!(point_to_polyline(Point2::ORIGIN, &[]).is_nan());
    }

    #[test]
    fn projection_error_on_l_shape() {
        let truth = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
        ];
        // Estimate hugging the truth at 5 cm offset.
        let est = [
            Point2::new(0.2, 0.05),
            Point2::new(0.8, 0.05),
            Point2::new(0.95, 0.5),
        ];
        let e = mean_projection_error(&est, &truth);
        assert!((e - 0.05).abs() < 1e-9, "{e}");
        assert!(mean_projection_error(&[], &truth).is_nan());
    }

    #[test]
    fn pointwise_matches_geometry() {
        let a = [Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        let b = [Point2::new(3.0, 4.0), Point2::new(1.0, 1.0)];
        let e = pointwise_errors(&a, &b);
        assert_eq!(e, vec![5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "time-aligned")]
    fn pointwise_length_mismatch_panics() {
        let _ = pointwise_errors(&[Point2::ORIGIN], &[]);
    }
}
