//! Particle filter with floorplan constraints (paper §6.3.3).
//!
//! RIM's relative trajectory slowly accumulates heading error; the paper
//! corrects it with a particle filter that "will discard every particle
//! that hits a wall and let others survive". Each particle carries a pose
//! hypothesis; prediction applies the per-step displacement with jitter;
//! the wall constraint re-weights; systematic resampling keeps the
//! population healthy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rim_channel::floorplan::Floorplan;
use rim_dsp::geom::{Point2, Vec2};

/// One pose hypothesis.
#[derive(Debug, Clone, Copy)]
pub struct Particle {
    /// Position hypothesis.
    pub pos: Point2,
    /// Current heading correction (added to the measured heading), radians.
    /// Captures constant sensor offsets.
    pub heading_bias: f64,
    /// Heading-drift-rate hypothesis, radians/second: models a gyro whose
    /// error *accumulates* (bias × time), which a constant offset cannot
    /// express. The wall constraint selects particles whose rate matches.
    pub drift_rate: f64,
    /// Importance weight.
    pub weight: f64,
}

/// Particle-filter configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParticleFilterConfig {
    /// Number of particles.
    pub n_particles: usize,
    /// Standard deviation of per-step distance jitter (fraction of step).
    pub step_noise: f64,
    /// Standard deviation of per-step heading jitter, radians.
    pub heading_noise: f64,
    /// Random-walk rate of the heading-bias hypothesis, radians/step.
    pub bias_walk: f64,
    /// Spread of the initial drift-rate hypotheses, radians/second —
    /// should cover the plausible gyro bias range (≈1 °/s for an
    /// uncalibrated consumer part).
    pub drift_rate_std: f64,
    /// Resample when the effective sample size falls below this fraction.
    pub resample_threshold: f64,
}

impl Default for ParticleFilterConfig {
    fn default() -> Self {
        Self {
            n_particles: 500,
            step_noise: 0.1,
            heading_noise: 0.03,
            bias_walk: 0.002,
            drift_rate_std: 1.0f64.to_radians(),
            resample_threshold: 0.5,
        }
    }
}

/// Map-constrained particle filter.
#[derive(Debug, Clone)]
pub struct ParticleFilter {
    particles: Vec<Particle>,
    config: ParticleFilterConfig,
    floorplan: Floorplan,
    rng: StdRng,
}

impl ParticleFilter {
    /// Creates a filter with all particles at the known start pose, with
    /// drift-rate hypotheses spread over the configured range.
    pub fn new(
        floorplan: Floorplan,
        start: Point2,
        config: ParticleFilterConfig,
        seed: u64,
    ) -> Self {
        assert!(config.n_particles > 0, "need at least one particle");
        let mut rng = StdRng::seed_from_u64(seed);
        let w = 1.0 / config.n_particles as f64;
        let particles = (0..config.n_particles)
            .map(|_| Particle {
                pos: start,
                heading_bias: 0.0,
                drift_rate: config.drift_rate_std * normal(&mut rng),
                weight: w,
            })
            .collect();
        Self {
            particles,
            config,
            floorplan,
            rng,
        }
    }

    /// The current particle population.
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// Advances the filter by one measured step: `distance` metres along
    /// world `heading` radians (as estimated by RIM + orientation source),
    /// covering `dt_s` seconds of motion. Returns the posterior position
    /// estimate.
    pub fn step(&mut self, distance: f64, heading: f64, dt_s: f64) -> Point2 {
        let cfg = self.config;
        for p in &mut self.particles {
            if p.weight == 0.0 {
                continue;
            }
            // The drift-rate hypothesis accumulates into the heading
            // correction, letting the filter track a gyro whose error
            // grows with time.
            p.heading_bias += p.drift_rate * dt_s + cfg.bias_walk * normal(&mut self.rng);
            let d = distance * (1.0 + cfg.step_noise * normal(&mut self.rng));
            let h = heading + p.heading_bias + cfg.heading_noise * normal(&mut self.rng);
            let next = p.pos + Vec2::from_angle(h) * d;
            // The map constraint: a step through a wall is impossible.
            if self.floorplan.blocks(p.pos, next) {
                p.weight = 0.0;
            } else {
                p.pos = next;
            }
        }
        self.normalise_or_recover();
        if self.effective_sample_fraction() < cfg.resample_threshold {
            self.resample();
        }
        self.estimate()
    }

    /// Weighted mean position.
    pub fn estimate(&self) -> Point2 {
        let mut x = 0.0;
        let mut y = 0.0;
        for p in &self.particles {
            x += p.pos.x * p.weight;
            y += p.pos.y * p.weight;
        }
        Point2::new(x, y)
    }

    /// Effective sample size as a fraction of the population.
    pub fn effective_sample_fraction(&self) -> f64 {
        let sum_sq: f64 = self.particles.iter().map(|p| p.weight * p.weight).sum();
        if sum_sq <= 0.0 {
            return 0.0;
        }
        1.0 / sum_sq / self.particles.len() as f64
    }

    /// Normalises weights; if every particle died (all crossed walls —
    /// the kidnapped-robot corner case), revives the population in place
    /// with uniform weights rather than panicking.
    fn normalise_or_recover(&mut self) {
        let total: f64 = self.particles.iter().map(|p| p.weight).sum();
        if total > 0.0 {
            for p in &mut self.particles {
                p.weight /= total;
            }
        } else {
            let w = 1.0 / self.particles.len() as f64;
            for p in &mut self.particles {
                p.weight = w;
            }
        }
    }

    /// Systematic resampling.
    fn resample(&mut self) {
        let n = self.particles.len();
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for p in &self.particles {
            acc += p.weight;
            cumulative.push(acc);
        }
        let step = 1.0 / n as f64;
        let mut u = self.rng.gen_range(0.0..step);
        let mut out = Vec::with_capacity(n);
        let mut idx = 0;
        for _ in 0..n {
            while idx + 1 < n && cumulative[idx] < u {
                idx += 1;
            }
            let mut p = self.particles[idx];
            p.weight = step;
            // Roughen the duplicated hypotheses a little to keep the
            // drift-rate population diverse.
            p.drift_rate += 0.02 * self.config.drift_rate_std * normal(&mut self.rng);
            out.push(p);
            u += step;
        }
        self.particles = out;
    }
}

fn normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_channel::floorplan::Wall;
    use rim_channel::Material;

    fn corridor() -> Floorplan {
        // A 2 m wide corridor along +x.
        Floorplan::new(vec![
            Wall::new(-1.0, 1.0, 20.0, 1.0, Material::drywall()),
            Wall::new(-1.0, -1.0, 20.0, -1.0, Material::drywall()),
        ])
    }

    #[test]
    fn tracks_straight_walk() {
        let mut pf = ParticleFilter::new(
            corridor(),
            Point2::ORIGIN,
            ParticleFilterConfig::default(),
            1,
        );
        let mut last = Point2::ORIGIN;
        for _ in 0..100 {
            last = pf.step(0.05, 0.0, 0.05);
        }
        assert!((last.x - 5.0).abs() < 0.3, "walked ~5 m: {last:?}");
        assert!(last.y.abs() < 0.3);
    }

    #[test]
    fn walls_correct_heading_bias() {
        // Feed a heading that is biased 10° to the left; the corridor
        // walls must keep the estimate inside and suppress the drift that
        // dead reckoning would accumulate.
        let mut pf = ParticleFilter::new(
            corridor(),
            Point2::ORIGIN,
            ParticleFilterConfig::default(),
            2,
        );
        let bias = 10f64.to_radians();
        let mut last = Point2::ORIGIN;
        for _ in 0..200 {
            last = pf.step(0.05, bias, 0.05);
        }
        // Dead reckoning would sit at y = 10·sin(10°) ≈ 1.74 — outside.
        assert!(last.y.abs() < 1.0, "map keeps the estimate in: {last:?}");
        assert!(last.x > 8.0, "and forward progress continues: {last:?}");
    }

    #[test]
    fn estimate_is_weighted_mean() {
        let pf = ParticleFilter::new(
            Floorplan::empty(),
            Point2::new(3.0, 4.0),
            ParticleFilterConfig {
                n_particles: 10,
                ..Default::default()
            },
            3,
        );
        let e = pf.estimate();
        assert!((e.x - 3.0).abs() < 1e-12 && (e.y - 4.0).abs() < 1e-12);
    }

    #[test]
    fn all_dead_population_recovers() {
        // A box so tight that every step crosses a wall.
        let fp = Floorplan::new(vec![
            Wall::new(-0.01, -0.01, 0.01, -0.01, Material::concrete()),
            Wall::new(0.01, -0.01, 0.01, 0.01, Material::concrete()),
            Wall::new(0.01, 0.01, -0.01, 0.01, Material::concrete()),
            Wall::new(-0.01, 0.01, -0.01, -0.01, Material::concrete()),
        ]);
        let mut pf = ParticleFilter::new(fp, Point2::ORIGIN, ParticleFilterConfig::default(), 4);
        let est = pf.step(1.0, 0.0, 1.0); // Every particle dies; filter recovers.
        assert!(est.x.is_finite() && est.y.is_finite());
        let ws: f64 = pf.particles().iter().map(|p| p.weight).sum();
        assert!((ws - 1.0).abs() < 1e-9, "weights renormalised: {ws}");
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            let mut pf = ParticleFilter::new(
                corridor(),
                Point2::ORIGIN,
                ParticleFilterConfig::default(),
                seed,
            );
            let mut last = Point2::ORIGIN;
            for _ in 0..50 {
                last = pf.step(0.05, 0.01, 0.05);
            }
            last
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one particle")]
    fn zero_particles_rejected() {
        let _ = ParticleFilter::new(
            Floorplan::empty(),
            Point2::ORIGIN,
            ParticleFilterConfig {
                n_particles: 0,
                ..Default::default()
            },
            0,
        );
    }
}
