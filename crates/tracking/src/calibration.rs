//! RIM-assisted inertial sensor calibration (paper §7: "both by applying
//! RIM to calibrate inertial sensors and by incorporating inertial sensors
//! with RIM").
//!
//! Two calibrations the fusion stack uses:
//!
//! * **Gyro bias** — RIM's movement detector knows, from CSI alone, when
//!   the device is truly static; averaging the gyro output over those
//!   stretches estimates its bias far better than factory zero-rate
//!   calibration, and keeps tracking it as the bias walks.
//! * **Magnetometer heading offset** — while RIM reports a confident
//!   discrete heading and the device moves straight, the difference to
//!   the magnetometer's heading estimates the local field distortion.

use rim_core::MotionEstimate;
use rim_dsp::stats::wrap_angle;

/// Estimated gyro bias from RIM-detected static periods, rad/s, plus how
/// many samples supported it. Returns `None` when fewer than `min_samples`
/// static samples exist.
pub fn gyro_bias_from_static(
    gyro_z: &[f64],
    estimate: &MotionEstimate,
    min_samples: usize,
) -> Option<(f64, usize)> {
    assert_eq!(
        gyro_z.len(),
        estimate.moving.len(),
        "gyro and estimate must align"
    );
    let vals: Vec<f64> = gyro_z
        .iter()
        .zip(&estimate.moving)
        .filter(|(_, &m)| !m)
        .map(|(&g, _)| g)
        .collect();
    if vals.len() < min_samples.max(1) {
        return None;
    }
    Some((vals.iter().sum::<f64>() / vals.len() as f64, vals.len()))
}

/// Applies a bias correction to a gyro stream.
pub fn debias_gyro(gyro_z: &[f64], bias: f64) -> Vec<f64> {
    gyro_z.iter().map(|&g| g - bias).collect()
}

/// Estimates the magnetometer's heading offset (environmental distortion
/// plus mounting offset) as the circular mean of
/// `magnetometer − (RIM heading)` over samples where RIM is confident and
/// the device moves along its own axis (orientation = heading, i.e. a
/// normal forward push). Returns `None` without enough support.
pub fn magnetometer_offset(
    mag_orientation: &[f64],
    estimate: &MotionEstimate,
    min_samples: usize,
) -> Option<f64> {
    assert_eq!(
        mag_orientation.len(),
        estimate.heading_device.len(),
        "magnetometer and estimate must align"
    );
    let diffs: Vec<f64> = mag_orientation
        .iter()
        .zip(&estimate.heading_device)
        .filter_map(|(&m, h)| {
            // Forward motion in the device frame: heading ≈ 0 means the
            // device axis points along the motion, so the magnetometer
            // should read the world heading directly.
            let h = (*h)?;
            if h.abs() < 0.1 {
                Some(wrap_angle(m))
            } else {
                None
            }
        })
        .collect();
    if diffs.len() < min_samples.max(1) {
        return None;
    }
    let mean = rim_dsp::stats::circular_mean(&diffs);
    mean.is_finite().then_some(mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_core::pipeline::MotionEstimate;

    fn estimate(moving: Vec<bool>, heading: Vec<Option<f64>>) -> MotionEstimate {
        let n = moving.len();
        MotionEstimate {
            sample_rate_hz: 100.0,
            movement_indicator: vec![1.0; n],
            moving,
            speed_mps: vec![0.0; n],
            heading_device: heading,
            angular_rate: vec![0.0; n],
            segments: Vec::new(),
        }
    }

    #[test]
    fn bias_from_static_periods() {
        // First half static, second half moving; gyro has bias 0.02 plus
        // real rotation during movement.
        let n = 200;
        let moving: Vec<bool> = (0..n).map(|i| i >= 100).collect();
        let gyro: Vec<f64> = (0..n)
            .map(|i| 0.02 + if i >= 100 { 1.0 } else { 0.0 })
            .collect();
        let est = estimate(moving, vec![None; n]);
        let (bias, support) = gyro_bias_from_static(&gyro, &est, 50).unwrap();
        assert!((bias - 0.02).abs() < 1e-12);
        assert_eq!(support, 100);
        let fixed = debias_gyro(&gyro, bias);
        assert!(fixed[0].abs() < 1e-12);
        assert!((fixed[150] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bias_requires_support() {
        let est = estimate(vec![true; 10], vec![None; 10]);
        assert!(gyro_bias_from_static(&[0.0; 10], &est, 5).is_none());
    }

    #[test]
    fn magnetometer_offset_from_forward_motion() {
        let n = 100;
        // Device pushed forward: RIM heading 0 in device frame; the
        // magnetometer reads a 0.3 rad distorted orientation.
        let heading: Vec<Option<f64>> = vec![Some(0.0); n];
        let est = estimate(vec![true; n], heading);
        let mag = vec![0.3; n];
        let off = magnetometer_offset(&mag, &est, 10).unwrap();
        assert!((off - 0.3).abs() < 1e-9);
    }

    #[test]
    fn magnetometer_offset_ignores_sideway_samples() {
        let n = 40;
        let mut heading: Vec<Option<f64>> = vec![Some(std::f64::consts::FRAC_PI_2); n];
        for h in heading.iter_mut().take(5) {
            *h = Some(0.0);
        }
        let est = estimate(vec![true; n], heading);
        let mag = vec![0.1; n];
        // Only 5 qualifying samples; require 10 → None.
        assert!(magnetometer_offset(&mag, &est, 10).is_none());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let est = estimate(vec![true; 2], vec![None; 2]);
        let _ = gyro_bias_from_static(&[0.0; 3], &est, 1);
    }
}
