//! The fusion engine proper: the validated [`Fuser`] entry point and the
//! streaming [`FusedStream`] it builds around a [`RimStream`].

use super::config::{FusionConfig, MapFusionConfig};
use super::eskf::{Eskf, E_BG, E_THETA, E_V};
use super::zupt::ZuptDetector;
use super::FusedTrack;
use rim_channel::floorplan::Floorplan;
use rim_core::{
    Confidence, Error, FusedMode, ImuSample, MotionEstimate, RimStream, StreamEvent, StreamInput,
};
use rim_dsp::geom::Point2;
use rim_dsp::stats::wrap_angle;
use rim_obs::{fusion_metric, stage, ActiveTrace, NullProbe, Probe};

/// Innovation gate width for RIM *provisional* distance corrections, in
/// standard deviations of the innovation. A provisional whose innovation
/// exceeds `DISTANCE_GATE_SIGMA·√S + DISTANCE_GATE_FLOOR_M` is
/// discarded: provisionals are translation-only approximations, and an
/// outlier mid-motion must not yank the arc. Closing segments bypass
/// this gate (see [`FusedStream::absorb`]), and known-stale gap-split
/// measurements are rejected by provenance rather than magnitude.
const DISTANCE_GATE_SIGMA: f64 = 5.0;
/// Absolute slack added to the distance gate, metres, so near-zero
/// innovation variance (fresh anchors, noiseless configs) never rejects
/// honest centimetre-scale corrections.
const DISTANCE_GATE_FLOOR_M: f64 = 0.05;
/// Relative slack added to the distance gate, as a fraction of the
/// measured cumulative distance. RIM's provisional estimates are
/// translation-only approximations that the motion's closing segment
/// supersedes; after an exact (R = 0) provisional reset the innovation
/// variance collapses, and without this term the few-percent
/// provisional-vs-final discrepancy would be rejected as an outlier.
/// A blackout-sized mismatch (metres of unseen motion) still dwarfs
/// 5 % of the measured distance and stays gated out.
const DISTANCE_GATE_FRAC: f64 = 0.05;
/// Longest IMU inter-sample step integrated as-is, seconds; longer gaps
/// are clamped so one stale timestamp cannot catapult the dead
/// reckoning.
const MAX_IMU_DT_S: f64 = 1.0;

/// The RIM×IMU fusion engine: a validated [`FusionConfig`] plus the
/// batch and streaming entry points that consume it.
///
/// Construct through [`Fuser::builder`]; every knob is checked once at
/// [`FuserBuilder::build`] so the hot paths never re-validate.
///
/// ```
/// use rim_tracking::Fuser;
/// let fuser = Fuser::builder()
///     .rim_distance_noise(0.02)
///     .confidence_floor(0.2)
///     .build()
///     .expect("valid configuration");
/// assert!((fuser.config().rim_distance_noise - 0.02).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Fuser {
    config: FusionConfig,
}

impl Fuser {
    /// Starts a builder preloaded with [`FusionConfig::default`].
    pub fn builder() -> FuserBuilder {
        FuserBuilder {
            config: FusionConfig::default(),
        }
    }

    /// The validated configuration.
    pub fn config(&self) -> &FusionConfig {
        &self.config
    }

    /// Batch fusion of a RIM estimate with a gyroscope track
    /// (paper §6.3.3): per-sample displacement along the
    /// gyro-integrated heading, down-weighted by segment confidence
    /// under [`FusionConfig::confidence_floor`]. Starts from the
    /// configured initial pose.
    ///
    /// # Panics
    /// Panics if the gyro track length differs from the estimate's.
    pub fn fuse(&self, estimate: &MotionEstimate, gyro_z: &[f64]) -> Vec<Point2> {
        super::fuse_weighted_impl(
            estimate,
            gyro_z,
            self.config.initial_position,
            self.config.initial_heading,
            self.config.confidence_floor,
        )
    }

    /// Batch fusion through the map-constrained particle filter
    /// (paper Fig. 21), yielding both the dead-reckoned and the
    /// filtered track.
    ///
    /// # Panics
    /// Panics if the gyro track length differs from the estimate's.
    pub fn fuse_with_map(
        &self,
        estimate: &MotionEstimate,
        gyro_z: &[f64],
        floorplan: &Floorplan,
        map: &MapFusionConfig,
    ) -> FusedTrack {
        super::fuse_map_impl(
            estimate,
            gyro_z,
            floorplan,
            self.config.initial_position,
            self.config.initial_heading,
            map,
        )
    }

    /// Wraps a streaming RIM engine in the error-state filter,
    /// producing a [`FusedStream`] that accepts both CSI and IMU input
    /// through one ingest call.
    pub fn stream(&self, rim: RimStream) -> FusedStream {
        FusedStream::new(rim, self)
    }
}

/// Builder for [`Fuser`]; see [`FusionConfig`] for what each knob
/// means. [`FuserBuilder::build`] validates the whole configuration and
/// returns [`rim_core::Error::Config`] naming the offending field.
#[derive(Debug, Clone)]
pub struct FuserBuilder {
    config: FusionConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $($(#[$doc])*
        #[must_use]
        pub fn $name(mut self, $name: $ty) -> Self {
            self.config.$name = $name;
            self
        })*
    };
}

impl FuserBuilder {
    builder_setters! {
        /// ZUPT stance window, samples (≥ 2).
        zupt_window: usize,
        /// Extra consecutive qualifying windows before stance fires
        /// (absorbs inter-step gait lulls; 0 = bare windowed verdict).
        zupt_sustain: usize,
        /// Stance threshold on windowed accel deviation, m/s².
        zupt_accel_std: f64,
        /// Stance threshold on windowed mean |gyro|, rad/s.
        zupt_gyro_rate: f64,
        /// Accelerometer white-noise density, (m/s²)/√Hz.
        accel_noise: f64,
        /// Gyroscope white-noise density, (rad/s)/√Hz.
        gyro_noise: f64,
        /// Gyro bias random-walk density, (rad/s²)/√Hz.
        gyro_bias_walk: f64,
        /// RIM distance noise at full confidence, metres (0 = exact).
        rim_distance_noise: f64,
        /// RIM heading noise, radians (`f64::INFINITY` disables).
        rim_heading_noise: f64,
        /// Magnetometer heading noise, radians (`f64::INFINITY` disables).
        mag_heading_noise: f64,
        /// ZUPT velocity pseudo-measurement noise, m/s.
        zupt_velocity_noise: f64,
        /// Confidence score below which RIM corrections are dropped.
        confidence_floor: f64,
        /// Seconds without a RIM correction before coasting is declared.
        coast_timeout_s: f64,
        /// Initial fused position, metres.
        initial_position: Point2,
        /// Initial fused heading, radians.
        initial_heading: f64,
    }

    /// Validates the configuration and builds the engine.
    ///
    /// # Errors
    /// [`rim_core::Error::Config`] when any field is out of range; the
    /// message names the field and the accepted values.
    pub fn build(self) -> Result<Fuser, Error> {
        self.config.validate()?;
        Ok(Fuser {
            config: self.config,
        })
    }
}

/// A streaming RIM engine wrapped in the RIM×IMU error-state Kalman
/// filter.
///
/// One ingest call accepts every [`StreamInput`] shape: CSI input is
/// forwarded to the inner [`RimStream`] unchanged (events come back
/// bit-identical to an unwrapped stream, at any thread count) and its
/// segment/provisional estimates are absorbed as filter corrections;
/// [`StreamInput::Imu`] batches propagate the filter and emit one
/// [`StreamEvent::Fused`] estimate each — including during CSI gaps and
/// blackouts, which is the point.
#[derive(Debug)]
pub struct FusedStream {
    rim: RimStream,
    config: FusionConfig,
    eskf: Eskf,
    zupt: ZuptDetector,
    /// Latest stance verdict after arbitration: the ZUPT detector says
    /// stance AND RIM does not currently contradict it (see
    /// [`FusedStream::step_imu`]).
    stationary: bool,
    /// Whether a RIM movement segment is currently open.
    motion_open: bool,
    /// Σ distance of chunks RIM has closed in the open motion, metres.
    rim_arc_base: f64,
    /// Σ fused distance over fully closed motions, metres.
    closed_total: f64,
    /// Fused heading at the current motion's anchor (RIM headings are
    /// relative to it).
    theta_anchor: f64,
    /// Timestamp of the previous IMU sample, if any.
    last_imu_us: Option<u64>,
    /// Latest IMU timestamp — the fused clock.
    now_us: u64,
    /// Arc value when the current stop banked it (0 while a motion is
    /// open); post-stop arc growth is measured against this.
    arc_at_stop: f64,
    /// Whether the stream degraded since the last stop — the signal that
    /// post-stop arc growth is coasted motion, not dwell drift.
    degraded_since_stop: bool,
    /// Fused clock at the last confident RIM contact (an estimate over
    /// the confidence floor, whether or not the gate applied it).
    last_rim_us: Option<u64>,
    /// Cumulative microseconds spent coasting (moving, no usable RIM).
    coast_time_us: u64,
    /// Mode of the most recent fused estimate.
    mode: FusedMode,
    /// Stance samples that produced ZUPT corrections.
    zupt_count: u64,
    /// Accepted RIM corrections.
    rim_updates: u64,
}

impl FusedStream {
    /// Wraps an existing streaming engine with the given fuser's
    /// configuration.
    pub fn new(rim: RimStream, fuser: &Fuser) -> Self {
        let config = fuser.config.clone();
        let eskf = Eskf::new(
            config.initial_position,
            config.initial_heading,
            config.gyro_noise,
            config.accel_noise,
            config.gyro_bias_walk,
        );
        let zupt = ZuptDetector::new(
            config.zupt_window,
            config.zupt_accel_std,
            config.zupt_gyro_rate,
        )
        .with_sustain(config.zupt_sustain);
        let theta_anchor = config.initial_heading;
        Self {
            rim,
            config,
            eskf,
            zupt,
            stationary: false,
            motion_open: false,
            rim_arc_base: 0.0,
            closed_total: 0.0,
            arc_at_stop: 0.0,
            degraded_since_stop: false,
            theta_anchor,
            last_imu_us: None,
            now_us: 0,
            last_rim_us: None,
            coast_time_us: 0,
            mode: FusedMode::RimAnchored,
            zupt_count: 0,
            rim_updates: 0,
        }
    }

    /// Starts an un-instrumented session (see [`FusedSession`]).
    pub fn session(&mut self) -> FusedSession<'_, NullProbe> {
        FusedSession {
            stream: self,
            probe: &NullProbe,
            trace: None,
        }
    }

    /// Ingests one unit of input — CSI or IMU — and returns any events
    /// it completes. Shorthand for [`FusedStream::session`] +
    /// [`FusedSession::ingest`].
    ///
    /// # Errors
    /// The inner [`RimStream::ingest`] errors, verbatim; IMU input never
    /// fails.
    pub fn ingest(&mut self, input: impl Into<StreamInput>) -> Result<Vec<StreamEvent>, Error> {
        self.ingest_internal(input.into(), &NullProbe, None)
    }

    /// Flushes the inner stream's open segment, absorbs the final
    /// estimates, and returns the events.
    pub fn finish(&mut self) -> Vec<StreamEvent> {
        self.finish_internal(&NullProbe)
    }

    /// The wrapped streaming RIM engine (read-only; mutate it through
    /// ingest so the filter sees every event).
    pub fn rim(&self) -> &RimStream {
        &self.rim
    }

    /// Current fused position, metres.
    pub fn position(&self) -> Point2 {
        self.eskf.position
    }

    /// Current fused heading, radians.
    pub fn heading(&self) -> f64 {
        self.eskf.heading
    }

    /// Current fused forward speed, m/s.
    pub fn velocity(&self) -> f64 {
        self.eskf.velocity
    }

    /// Trace of the error-state covariance.
    pub fn covariance_trace(&self) -> f64 {
        self.eskf.covariance_trace()
    }

    /// Mode of the most recent fused estimate.
    pub fn mode(&self) -> FusedMode {
        self.mode
    }

    /// Total fused travel distance, metres: the banked motions plus the
    /// arc grown since the last bank. Between a stop and the next start
    /// that growth is the IMU's opinion — kept for good if the stream
    /// degraded in between (distance coasted through a blackout that RIM
    /// never saw), discarded at a clean restart (dwell drift plus the
    /// detection latency that the backdated restart re-measures).
    pub fn total_distance(&self) -> f64 {
        self.closed_total + self.eskf.arc - self.arc_at_stop
    }

    /// Stance samples that produced ZUPT corrections so far.
    pub fn zupt_count(&self) -> u64 {
        self.zupt_count
    }

    /// Accepted RIM corrections so far.
    pub fn rim_updates(&self) -> u64 {
        self.rim_updates
    }

    /// Cumulative time spent IMU-coasting, microseconds.
    pub fn coast_time_us(&self) -> u64 {
        self.coast_time_us
    }

    /// The ingest body shared by the public entry points.
    fn ingest_internal<P: Probe + ?Sized>(
        &mut self,
        input: StreamInput,
        probe: &P,
        trace: Option<&mut ActiveTrace>,
    ) -> Result<Vec<StreamEvent>, Error> {
        match input {
            StreamInput::Imu(samples) => Ok(self.ingest_imu(&samples, probe)),
            other => {
                let events = {
                    let mut session = self.rim.session().probe(probe);
                    if let Some(t) = trace {
                        session = session.trace(t);
                    }
                    session.ingest(other)?
                };
                self.absorb(&events, probe);
                Ok(events)
            }
        }
    }

    /// The finish body shared by the public entry points.
    fn finish_internal<P: Probe + ?Sized>(&mut self, probe: &P) -> Vec<StreamEvent> {
        let events = self.rim.session().probe(probe).finish();
        self.absorb(&events, probe);
        events
    }

    /// Runs one IMU batch through the filter: propagate each sample,
    /// apply stance corrections, and emit a single fused estimate
    /// stamped with the batch's last timestamp.
    fn ingest_imu<P: Probe + ?Sized>(
        &mut self,
        samples: &[ImuSample],
        probe: &P,
    ) -> Vec<StreamEvent> {
        probe.count(
            stage::FUSION,
            fusion_metric::IMU_SAMPLES,
            samples.len() as u64,
        );
        let Some(last) = samples.last() else {
            return Vec::new();
        };
        for s in samples {
            self.step_imu(s, probe);
        }
        self.mode = self.current_mode();
        let event = StreamEvent::Fused {
            t_us: last.t_us,
            position: self.eskf.position,
            heading: self.eskf.heading,
            velocity: self.eskf.velocity,
            covariance_trace: self.eskf.covariance_trace(),
            mode: self.mode,
        };
        vec![event]
    }

    /// Propagates one IMU sample and applies any stance-time
    /// corrections.
    fn step_imu<P: Probe + ?Sized>(&mut self, s: &ImuSample, probe: &P) {
        let dt = match self.last_imu_us {
            Some(prev) if s.t_us > prev => ((s.t_us - prev) as f64 / 1e6).min(MAX_IMU_DT_S),
            // First sample (or a non-monotone timestamp): seed the clock
            // without integrating.
            _ => 0.0,
        };
        self.last_imu_us = Some(s.t_us);
        self.now_us = s.t_us;

        let stance = self.zupt.push(s.accel_body.norm(), s.gyro_z);
        // Inertial stance detection cannot tell cruise from standstill —
        // constant-velocity motion is invisible to an accelerometer — and
        // a false stance clamps the filter into certainty that it is not
        // moving. While a RIM movement segment is open and the anchor is
        // fresh, RIM's channel-based movement detection outranks the
        // stance guess: suppress ZUPT, and let it re-arm when RIM agrees
        // the user stopped or the anchor is lost (blackout coasting —
        // ZUPT's actual job).
        self.stationary = stance && (!self.motion_open || self.coasting());
        self.eskf.propagate(s.accel_body.x, s.gyro_z, dt);

        if self.stationary {
            // Velocity is zero by observation; the gyro reading is pure
            // bias.
            let r_v = self.config.zupt_velocity_noise * self.config.zupt_velocity_noise;
            self.eskf.update_scalar(E_V, -self.eskf.velocity, r_v);
            if dt > 0.0 {
                let r_bg = self.config.gyro_noise * self.config.gyro_noise / dt;
                self.eskf
                    .update_scalar(E_BG, s.gyro_z - self.eskf.gyro_bias, r_bg);
            }
            self.zupt_count += 1;
            probe.count(stage::FUSION, fusion_metric::ZUPT_COUNT, 1);
        } else if self.coasting() {
            let dt_us = (dt * 1e6) as u64;
            self.coast_time_us += dt_us;
            probe.count(stage::FUSION, fusion_metric::COAST_TIME_US, dt_us);
        }

        if let Some(mag) = s.mag_orientation {
            if self.config.mag_heading_noise.is_finite() {
                let z = wrap_angle(mag - self.eskf.heading);
                let r = self.config.mag_heading_noise * self.config.mag_heading_noise;
                self.eskf.update_scalar(E_THETA, z, r);
            }
        }
    }

    /// Whether the stream currently lacks a usable RIM anchor: CSI is
    /// degraded or no confident RIM estimate has arrived within the
    /// coast timeout.
    fn coasting(&self) -> bool {
        if self.rim.degraded() {
            return true;
        }
        let timeout_us = (self.config.coast_timeout_s * 1e6) as u64;
        self.last_rim_us
            .is_none_or(|t| self.now_us.saturating_sub(t) > timeout_us)
    }

    /// The mode label for the next fused estimate.
    fn current_mode(&self) -> FusedMode {
        if self.stationary {
            FusedMode::Zupt
        } else if self.coasting() {
            FusedMode::ImuCoasting
        } else {
            FusedMode::RimAnchored
        }
    }

    /// Absorbs the inner stream's events as filter corrections.
    fn absorb<P: Probe + ?Sized>(&mut self, events: &[StreamEvent], probe: &P) {
        // A batch carrying an input-gap degradation is the stream closing
        // shop over a blackout: its segment/provisional figures measure
        // only up to where the samples stopped, while the filter's arc
        // kept growing through the outage on the IMU. Applying such a
        // measurement would snap the coasted distance (and velocity) back
        // to the pre-gap figure — with a covariance widened by the very
        // coast it is about to erase, the innovation gate cannot be
        // trusted to reject it. The measurements are not outliers, they
        // are stale; skip the corrections and keep the bookkeeping.
        let gap_split = events.iter().any(|e| {
            matches!(
                e,
                StreamEvent::Degraded {
                    reason: rim_core::DegradeReason::InputGap { .. },
                    ..
                }
            )
        });
        for event in events {
            match event {
                StreamEvent::MovementStarted { .. } => {
                    // When the stream degraded between the last stop and
                    // this restart, the stop was a gap split and the arc
                    // grown since it is motion the IMU coasted through a
                    // blackout — bank it, the way the fused position
                    // keeps it. After a clean stop the remainder is
                    // dwell drift plus RIM's detection latency, both of
                    // which the backdated restart re-measures: discard.
                    if self.degraded_since_stop {
                        self.closed_total += self.eskf.arc - self.arc_at_stop;
                    }
                    self.degraded_since_stop = false;
                    self.arc_at_stop = 0.0;
                    self.motion_open = true;
                    self.rim_arc_base = 0.0;
                    self.eskf.reset_arc();
                    self.theta_anchor = self.eskf.heading;
                    self.last_rim_us = Some(self.now_us);
                }
                StreamEvent::Provisional {
                    distance_so_far,
                    heading,
                    confidence,
                    ..
                } if self.motion_open && !gap_split => {
                    self.apply_rim(*distance_so_far, *heading, confidence, true, probe);
                }
                StreamEvent::Segment(seg) if self.motion_open => {
                    let cumulative = self.rim_arc_base + seg.distance_m;
                    if !gap_split {
                        self.apply_rim(
                            cumulative,
                            seg.heading_device,
                            &seg.confidence,
                            false,
                            probe,
                        );
                    }
                    self.rim_arc_base = cumulative;
                }
                StreamEvent::MovementStopped { .. } if self.motion_open => {
                    self.closed_total += self.eskf.arc;
                    self.arc_at_stop = self.eskf.arc;
                    self.motion_open = false;
                    self.rim_arc_base = 0.0;
                }
                StreamEvent::Degraded { .. } => {
                    self.degraded_since_stop = true;
                }
                _ => {}
            }
        }
    }

    /// Applies one RIM estimate — cumulative distance since the motion
    /// opened, plus an optional device-frame heading — as filter
    /// corrections, confidence-weighted. Provisionals (`gated`) must
    /// additionally pass the innovation gate; a motion's closing segment
    /// is RIM's authoritative figure and bypasses it — its trust is
    /// already encoded in the confidence-scaled R, and a filter that
    /// drifted (or was pinned by false stance on constant-velocity
    /// motion, where an accelerometer cannot tell cruise from standstill)
    /// must be pulled back to RIM, not allowed to veto it.
    fn apply_rim<P: Probe + ?Sized>(
        &mut self,
        cumulative_m: f64,
        heading_device: Option<f64>,
        confidence: &Confidence,
        gated: bool,
        probe: &P,
    ) {
        let score = confidence.score();
        if score < self.config.confidence_floor {
            probe.count(stage::FUSION, fusion_metric::LOW_CONFIDENCE_DROPPED, 1);
            return;
        }
        // A zero score with a zero floor accepts everything; keep the
        // noise scaling finite.
        let weight = score.max(1e-6);
        // A confident estimate proves the RIM anchor is alive whatever
        // the gate decides below — refresh the coast clock on contact,
        // not on acceptance, or a run of gate-rejected provisionals
        // would fake a blackout and re-arm ZUPT mid-motion.
        self.last_rim_us = Some(self.now_us);

        let z = cumulative_m - self.eskf.arc;
        probe.observe(stage::FUSION, fusion_metric::SPEED_INNOVATION, z);
        let sigma = self.config.rim_distance_noise / weight;
        let r = sigma * sigma;
        let gate = DISTANCE_GATE_SIGMA * (self.eskf.arc_variance() + r).sqrt()
            + DISTANCE_GATE_FLOOR_M.max(DISTANCE_GATE_FRAC * cumulative_m.abs());
        if (!gated || z.abs() <= gate) && self.eskf.update_scalar(super::eskf::E_ARC, z, r) {
            self.rim_updates += 1;
            probe.count(stage::FUSION, fusion_metric::RIM_UPDATES, 1);
        }

        if let Some(h) = heading_device {
            if self.config.rim_heading_noise.is_finite() {
                let z = wrap_angle(self.theta_anchor + h - self.eskf.heading);
                probe.observe(stage::FUSION, fusion_metric::HEADING_INNOVATION, z);
                let sigma = self.config.rim_heading_noise / weight;
                self.eskf.update_scalar(E_THETA, z, sigma * sigma);
            }
        }
    }
}

/// A builder-style handle for probed fused ingests, created by
/// [`FusedStream::session`]. Mirrors [`rim_core::StreamSession`]: attach
/// a probe and/or trace, then ingest any [`StreamInput`] shape.
#[derive(Debug)]
pub struct FusedSession<'s, P: Probe + ?Sized = NullProbe> {
    stream: &'s mut FusedStream,
    probe: &'s P,
    trace: Option<&'s mut ActiveTrace>,
}

impl<'s, P: Probe + ?Sized> FusedSession<'s, P> {
    /// Attaches an observability probe: the inner stream reports under
    /// its usual stages, and the fusion layer under
    /// [`rim_obs::stage::FUSION`].
    pub fn probe<Q: Probe + ?Sized>(self, probe: &'s Q) -> FusedSession<'s, Q> {
        FusedSession {
            stream: self.stream,
            probe,
            trace: self.trace,
        }
    }

    /// Attaches a per-request trace, forwarded to the inner stream for
    /// CSI input (IMU batches are not traced — they never touch the
    /// alignment pipeline).
    pub fn trace(self, trace: &'s mut ActiveTrace) -> FusedSession<'s, P> {
        FusedSession {
            stream: self.stream,
            probe: self.probe,
            trace: Some(trace),
        }
    }

    /// Ingests one unit of input — CSI or IMU — and returns any events
    /// it completes.
    ///
    /// # Errors
    /// The inner [`RimStream::ingest`] errors, verbatim.
    pub fn ingest(&mut self, input: impl Into<StreamInput>) -> Result<Vec<StreamEvent>, Error> {
        self.stream
            .ingest_internal(input.into(), self.probe, self.trace.as_deref_mut())
    }

    /// Flushes the open segment if any and returns its estimate.
    pub fn finish(&mut self) -> Vec<StreamEvent> {
        self.stream.finish_internal(self.probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_core::{RimConfig, StreamEventKind};
    use rim_dsp::geom::Vec2;

    fn imu_batch(t0_us: u64, n: usize, dt_us: u64, accel: Vec2, gyro: f64) -> Vec<ImuSample> {
        (0..n)
            .map(|i| ImuSample {
                t_us: t0_us + i as u64 * dt_us,
                accel_body: accel,
                gyro_z: gyro,
                mag_orientation: None,
            })
            .collect()
    }

    fn test_stream(fuser: &Fuser) -> FusedStream {
        let geometry = rim_array::ArrayGeometry::linear(3, 0.05);
        let rim = RimStream::new(geometry, RimConfig::for_sample_rate(100.0)).unwrap();
        fuser.stream(rim)
    }

    #[test]
    fn builder_rejects_invalid_fields_with_named_errors() {
        let err = Fuser::builder().zupt_window(1).build().unwrap_err();
        assert!(err.to_string().contains("zupt_window"), "{err}");
        let err = Fuser::builder().confidence_floor(1.0).build().unwrap_err();
        assert!(err.to_string().contains("confidence_floor"), "{err}");
        let err = Fuser::builder()
            .rim_heading_noise(-0.1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("rim_heading_noise"), "{err}");
        assert!(Fuser::builder().build().is_ok(), "defaults are valid");
        // INFINITY is the documented "disabled" value, not an error.
        assert!(Fuser::builder()
            .mag_heading_noise(f64::INFINITY)
            .build()
            .is_ok());
    }

    #[test]
    fn imu_batches_emit_one_fused_event_each() {
        let fuser = Fuser::builder().build().unwrap();
        let mut stream = test_stream(&fuser);
        let events = stream
            .ingest(imu_batch(0, 80, 10_000, Vec2::new(0.0, 0.0), 0.0))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind(), StreamEventKind::Fused);
        let StreamEvent::Fused { t_us, mode, .. } = events[0] else {
            panic!("fused event expected");
        };
        assert_eq!(t_us, 79 * 10_000);
        // A quiet IMU fills the stance window plus the sustain tail
        // (16 + 48 samples by default): ZUPT mode.
        assert_eq!(mode, FusedMode::Zupt);
        assert!(stream.zupt_count() > 0);
        // An empty batch is a no-op.
        assert!(stream.ingest(Vec::<ImuSample>::new()).unwrap().is_empty());
    }

    #[test]
    fn moving_without_rim_is_labelled_coasting_and_accumulates_time() {
        let fuser = Fuser::builder().build().unwrap();
        let mut stream = test_stream(&fuser);
        // Jittery forward accel keeps the stance detector off (constant
        // readings have zero deviation and would look like stance); no
        // CSI anywhere.
        let batch: Vec<ImuSample> = (0..100)
            .map(|i| ImuSample {
                t_us: i as u64 * 10_000,
                accel_body: Vec2::new(0.8 + 0.5 * (-1f64).powi(i), 0.0),
                gyro_z: 0.0,
                mag_orientation: None,
            })
            .collect();
        let events = stream.ingest(batch).unwrap();
        let StreamEvent::Fused { mode, velocity, .. } = events[0] else {
            panic!("fused event expected");
        };
        assert_eq!(mode, FusedMode::ImuCoasting);
        assert!(velocity > 0.5, "accel integrated: {velocity}");
        assert!(stream.coast_time_us() > 0);
        assert!(stream.position().x > 0.0, "the track moved forward");
    }

    #[test]
    fn covariance_trace_grows_while_coasting() {
        let fuser = Fuser::builder().build().unwrap();
        let mut stream = test_stream(&fuser);
        // Jittery accel keeps the stance detector off in both batches so
        // the filter genuinely coasts throughout.
        let jitter = |t0_us: u64, n: usize| -> Vec<ImuSample> {
            (0..n)
                .map(|i| ImuSample {
                    t_us: t0_us + i as u64 * 10_000,
                    accel_body: Vec2::new(0.5 + 0.4 * (-1f64).powi(i as i32), 0.1),
                    gyro_z: 0.02,
                    mag_orientation: None,
                })
                .collect()
        };
        let first = stream.ingest(jitter(0, 20)).unwrap();
        let later = stream.ingest(jitter(200_000, 200)).unwrap();
        let (
            StreamEvent::Fused {
                covariance_trace: a,
                ..
            },
            StreamEvent::Fused {
                covariance_trace: b,
                ..
            },
        ) = (&first[0], &later[0])
        else {
            panic!("fused events expected");
        };
        assert!(b > a, "uncertainty grows while coasting: {a} → {b}");
    }

    #[test]
    fn fused_stream_is_transparent_for_csi_only_input() {
        // Same dense CSI through a bare RimStream and a FusedStream:
        // identical events (modulo the absence of any Fused estimates,
        // since no IMU was ingested).
        let geometry = rim_array::ArrayGeometry::linear(3, 0.05);
        let config = RimConfig::for_sample_rate(100.0);
        let mut bare = RimStream::new(geometry.clone(), config.clone()).unwrap();
        let fuser = Fuser::builder().build().unwrap();
        let mut fused = fuser.stream(RimStream::new(geometry, config).unwrap());

        let n_ant = 3;
        let snaps = |seed: usize| -> Vec<rim_csi::frame::CsiSnapshot> {
            (0..n_ant)
                .map(|a| rim_csi::frame::CsiSnapshot {
                    per_tx: vec![(0..16)
                        .map(|k| {
                            let x = (seed * 31 + a * 7 + k) as f64;
                            rim_dsp::complex::Complex64::new((x * 0.37).sin(), (x * 0.61).cos())
                        })
                        .collect()],
                })
                .collect()
        };
        for i in 0..120 {
            let a = bare.ingest(snaps(i)).unwrap();
            let b = fused.ingest(snaps(i)).unwrap();
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "sample {i}");
        }
        assert_eq!(
            format!("{:?}", bare.finish()),
            format!("{:?}", fused.finish())
        );
    }
}
