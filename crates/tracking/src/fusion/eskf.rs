//! The 2D error-state Kalman filter under the fusion engine.
//!
//! Nominal state: position `p` (m), heading `θ` (rad), forward speed `v`
//! (m/s), gyro bias `b_g` (rad/s), and arc length `a` (m) travelled
//! since the current RIM anchor. The nominal state is propagated
//! nonlinearly by each IMU sample; the *error* state
//! `δx = [δpx, δpy, δθ, δv, δb_g, δa]` carries the 6×6 covariance `P`
//! and is corrected by scalar measurements, then injected back into the
//! nominal state and reset to zero (the standard ESKF cycle — see
//! DESIGN.md for the derivation).
//!
//! The arc state is what makes RIM's segment estimates a linear
//! measurement: RIM reports cumulative distance since motion start,
//! which observes `a` directly (`H = [0 0 0 0 0 1]`), and a zero
//! measurement noise turns the Kalman gain into an exact reset — the
//! property the "ideal IMU matches RIM-only" test pins.
//!
//! Everything here is sequential scalar `f64` arithmetic: fused output
//! is bit-identical at any worker-pool size by construction.

use rim_dsp::geom::{Point2, Vec2};
use rim_dsp::stats::wrap_angle;

/// Error-state indices.
pub(crate) const E_PX: usize = 0;
pub(crate) const E_PY: usize = 1;
pub(crate) const E_THETA: usize = 2;
pub(crate) const E_V: usize = 3;
pub(crate) const E_BG: usize = 4;
pub(crate) const E_ARC: usize = 5;
const N: usize = 6;

/// The filter: nominal state plus error covariance.
#[derive(Debug, Clone)]
pub(crate) struct Eskf {
    /// Fused position, metres.
    pub position: Point2,
    /// Fused heading, radians.
    pub heading: f64,
    /// Fused forward speed, m/s.
    pub velocity: f64,
    /// Estimated gyro bias, rad/s.
    pub gyro_bias: f64,
    /// Arc length since the current RIM anchor, metres.
    pub arc: f64,
    /// Error-state covariance.
    cov: [[f64; N]; N],
    /// Process noise variances per second (θ, v, b_g).
    q_theta: f64,
    q_v: f64,
    q_bg: f64,
}

impl Eskf {
    /// A filter at the given initial pose. Noise densities are per-√Hz;
    /// squaring them gives the continuous-time variances integrated per
    /// propagation step.
    pub fn new(
        position: Point2,
        heading: f64,
        gyro_noise: f64,
        accel_noise: f64,
        gyro_bias_walk: f64,
    ) -> Self {
        let mut cov = [[0.0; N]; N];
        // Start confident in the provided pose and arc, agnostic about
        // speed and bias at the scale a consumer IMU warrants.
        cov[E_PX][E_PX] = 1e-6;
        cov[E_PY][E_PY] = 1e-6;
        cov[E_THETA][E_THETA] = 1e-4;
        cov[E_V][E_V] = 1e-2;
        cov[E_BG][E_BG] = 1e-4;
        cov[E_ARC][E_ARC] = 0.0;
        Self {
            position,
            heading,
            velocity: 0.0,
            gyro_bias: 0.0,
            arc: 0.0,
            cov,
            q_theta: gyro_noise * gyro_noise,
            q_v: accel_noise * accel_noise,
            q_bg: gyro_bias_walk * gyro_bias_walk,
        }
    }

    /// Propagates the nominal state through one IMU sample and the
    /// covariance through the linearised dynamics.
    pub fn propagate(&mut self, accel_forward: f64, gyro_z: f64, dt: f64) {
        // `partial_cmp` so a NaN dt is refused along with zero/negative.
        if dt.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        let omega = gyro_z - self.gyro_bias;
        let (sin_t, cos_t) = self.heading.sin_cos();

        // Covariance first, linearised at the pre-update nominal state:
        // P ← F P Fᵀ + Q·dt with F = I + A·dt.
        let v = self.velocity;
        let mut f = [[0.0; N]; N];
        for (i, row) in f.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        f[E_PX][E_THETA] = -v * sin_t * dt;
        f[E_PX][E_V] = cos_t * dt;
        f[E_PY][E_THETA] = v * cos_t * dt;
        f[E_PY][E_V] = sin_t * dt;
        f[E_THETA][E_BG] = -dt;
        f[E_ARC][E_V] = dt;
        let mut fp = [[0.0; N]; N];
        for (fp_row, f_row) in fp.iter_mut().zip(&f) {
            for (cov_row, &fik) in self.cov.iter().zip(f_row) {
                if fik != 0.0 {
                    for (out, &c) in fp_row.iter_mut().zip(cov_row) {
                        *out += fik * c;
                    }
                }
            }
        }
        let mut new_cov = [[0.0; N]; N];
        for (nc_row, fp_row) in new_cov.iter_mut().zip(&fp) {
            for (k, &fjk) in fp_row.iter().enumerate() {
                if fjk != 0.0 {
                    for (out, f_row) in nc_row.iter_mut().zip(&f) {
                        *out += fjk * f_row[k];
                    }
                }
            }
        }
        new_cov[E_THETA][E_THETA] += self.q_theta * dt;
        new_cov[E_V][E_V] += self.q_v * dt;
        new_cov[E_BG][E_BG] += self.q_bg * dt;
        self.cov = new_cov;

        // Nominal state (Euler integration on the IMU clock).
        self.heading = wrap_angle(self.heading + omega * dt);
        self.velocity += accel_forward * dt;
        let step = self.velocity * dt;
        self.position += Vec2::new(cos_t * step, sin_t * step);
        self.arc += step;
    }

    /// Applies one scalar measurement observing error state `j` with
    /// innovation `z` and measurement variance `r`, injecting the
    /// correction into the nominal state. Returns `false` when the
    /// update is uninformative (zero innovation variance).
    pub fn update_scalar(&mut self, j: usize, z: f64, r: f64) -> bool {
        let s = self.cov[j][j] + r;
        // `partial_cmp` so a NaN innovation variance is refused too.
        if s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !z.is_finite() {
            return false;
        }
        let mut gain = [0.0; N];
        for (i, g) in gain.iter_mut().enumerate() {
            *g = self.cov[i][j] / s;
        }
        // Inject δx = K·z and reset the error state to zero.
        self.position += Vec2::new(gain[E_PX] * z, gain[E_PY] * z);
        self.heading = wrap_angle(self.heading + gain[E_THETA] * z);
        self.velocity += gain[E_V] * z;
        self.gyro_bias += gain[E_BG] * z;
        self.arc += gain[E_ARC] * z;
        // P ← (I − K H) P, symmetrised, diagonal clamped.
        let row_j = self.cov[j];
        for (cov_row, &g) in self.cov.iter_mut().zip(&gain) {
            for (c, &rj) in cov_row.iter_mut().zip(&row_j) {
                *c -= g * rj;
            }
        }
        for i in 0..N {
            for l in (i + 1)..N {
                let m = 0.5 * (self.cov[i][l] + self.cov[l][i]);
                self.cov[i][l] = m;
                self.cov[l][i] = m;
            }
            self.cov[i][i] = self.cov[i][i].max(0.0);
        }
        true
    }

    /// Starts a new RIM anchor: the arc is exactly zero by definition,
    /// so its error and cross-covariances vanish.
    pub fn reset_arc(&mut self) {
        self.arc = 0.0;
        for i in 0..N {
            self.cov[E_ARC][i] = 0.0;
            self.cov[i][E_ARC] = 0.0;
        }
    }

    /// Trace of the error covariance — the scalar uncertainty summary
    /// carried on [`rim_core::StreamEvent::Fused`].
    pub fn covariance_trace(&self) -> f64 {
        (0..N).map(|i| self.cov[i][i]).sum()
    }

    /// Variance of the arc error state — the prior term of a RIM
    /// distance innovation's variance, used for gating.
    pub fn arc_variance(&self) -> f64 {
        self.cov[E_ARC][E_ARC]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_filter() -> Eskf {
        Eskf::new(Point2::ORIGIN, 0.0, 0.005, 0.02, 1e-4)
    }

    #[test]
    fn straight_propagation_integrates_speed_along_heading() {
        let mut f = quiet_filter();
        // 1 m/s² forward for 1 s at 100 Hz, then 1 s cruise.
        for _ in 0..100 {
            f.propagate(1.0, 0.0, 0.01);
        }
        assert!((f.velocity - 1.0).abs() < 1e-9, "v = {}", f.velocity);
        for _ in 0..100 {
            f.propagate(0.0, 0.0, 0.01);
        }
        assert!((f.position.x - 1.5).abs() < 0.02, "{:?}", f.position);
        assert!(f.position.y.abs() < 1e-12);
        assert!((f.arc - f.position.x).abs() < 1e-12, "arc tracks distance");
    }

    #[test]
    fn covariance_grows_while_coasting_and_shrinks_on_updates() {
        let mut f = quiet_filter();
        let t0 = f.covariance_trace();
        for _ in 0..200 {
            f.propagate(0.0, 0.0, 0.01);
        }
        let coasted = f.covariance_trace();
        assert!(coasted > t0, "uncertainty grows: {t0} → {coasted}");
        assert!(f.update_scalar(E_V, -f.velocity, 1e-4));
        assert!(f.covariance_trace() < coasted, "update shrinks it");
    }

    #[test]
    fn zero_noise_arc_measurement_is_an_exact_reset() {
        let mut f = quiet_filter();
        for _ in 0..100 {
            f.propagate(0.5, 0.0, 0.01);
        }
        let measured = 0.4_f64; // "RIM says 0.4 m"
        assert!(f.update_scalar(E_ARC, measured - f.arc, 0.0));
        assert!((f.arc - measured).abs() < 1e-12, "arc snapped: {}", f.arc);
    }

    #[test]
    fn gyro_bias_update_corrects_heading_drift_rate() {
        let mut f = quiet_filter();
        // Stationary device, biased gyro: 0.02 rad/s reading.
        for _ in 0..50 {
            f.propagate(0.0, 0.02, 0.01);
        }
        // Stance: the reading is the bias.
        for _ in 0..50 {
            f.propagate(0.0, 0.02, 0.01);
            f.update_scalar(E_BG, 0.02 - f.gyro_bias, 1e-6);
        }
        assert!(
            (f.gyro_bias - 0.02).abs() < 1e-3,
            "bias learned: {}",
            f.gyro_bias
        );
    }

    #[test]
    fn uninformative_updates_are_refused() {
        let mut f = quiet_filter();
        f.reset_arc();
        // Arc variance is exactly zero after a reset; with r = 0 there
        // is no innovation variance at all.
        assert!(!f.update_scalar(E_ARC, 1.0, 0.0));
        assert!(!f.update_scalar(E_V, f64::NAN, 1e-4));
    }
}
