//! Fusion configuration: the validated knob set behind
//! [`Fuser::builder`](super::Fuser::builder).

use rim_core::Error;
use rim_dsp::geom::Point2;

/// Configuration of the RIM×IMU fusion engine: ZUPT stance thresholds,
/// error-state process noise, measurement noise, and the confidence
/// floor below which RIM corrections are discarded.
///
/// Build through [`Fuser::builder`](super::Fuser::builder), which
/// validates every field ([`rim_core::Error::Config`] on invalid
/// combinations); the fields are public so an accepted configuration can
/// be inspected.
#[derive(Debug, Clone)]
pub struct FusionConfig {
    /// ZUPT stance window, samples. The detector declares the device
    /// stationary when the accelerometer deviation and mean gyro rate
    /// over this many consecutive IMU samples both sit under their
    /// thresholds.
    pub zupt_window: usize,
    /// Additional consecutive qualifying windows required before stance
    /// is declared (a refractory tail on top of `zupt_window`). Gait has
    /// quiet lulls between accelerometer bursts — mid-swing during
    /// running a single window of low deviation fits inside one stride —
    /// so the detector must see `zupt_window + zupt_sustain` consecutive
    /// quiet samples before it clamps velocity. `0` restores the bare
    /// windowed verdict.
    pub zupt_sustain: usize,
    /// Stance threshold on the windowed accelerometer-magnitude standard
    /// deviation, m/s².
    pub zupt_accel_std: f64,
    /// Stance threshold on the windowed mean absolute gyro rate, rad/s.
    pub zupt_gyro_rate: f64,
    /// Accelerometer white-noise density, (m/s²)/√Hz — process noise on
    /// the velocity error state.
    pub accel_noise: f64,
    /// Gyroscope white-noise density, (rad/s)/√Hz — process noise on the
    /// heading error state, and the ZUPT-time gyro-bias measurement
    /// noise.
    pub gyro_noise: f64,
    /// Gyroscope bias random-walk density, (rad/s²)/√Hz — process noise
    /// on the bias error state.
    pub gyro_bias_walk: f64,
    /// RIM distance measurement noise at full confidence, metres (1σ).
    /// Scaled up by 1/score for lower-confidence segments; exactly zero
    /// makes every accepted RIM distance an exact arc reset.
    pub rim_distance_noise: f64,
    /// RIM heading measurement noise at full confidence, radians (1σ).
    /// `f64::INFINITY` disables heading corrections.
    pub rim_heading_noise: f64,
    /// Magnetometer heading measurement noise, radians (1σ).
    /// `f64::INFINITY` disables magnetometer corrections.
    pub mag_heading_noise: f64,
    /// ZUPT pseudo-measurement noise on velocity, m/s (1σ).
    pub zupt_velocity_noise: f64,
    /// RIM corrections whose [`rim_core::Confidence::score`] falls below
    /// this floor are dropped instead of applied. `0` accepts everything.
    pub confidence_floor: f64,
    /// Seconds without an accepted RIM correction before a moving
    /// estimate is labelled [`rim_core::FusedMode::ImuCoasting`].
    pub coast_timeout_s: f64,
    /// Initial fused position, metres.
    pub initial_position: Point2,
    /// Initial fused heading, radians.
    pub initial_heading: f64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self {
            zupt_window: 16,
            // Arbitrated against the scenario zoo's running gait: at
            // 200 Hz a 16-sample window plus 48 sustain samples spans
            // 0.32 s of required quiet, longer than the inter-step lull
            // of a 3 Hz running cadence, while a genuine stop (≥ 0.5 s)
            // still engages ZUPT promptly.
            zupt_sustain: 48,
            zupt_accel_std: 0.12,
            zupt_gyro_rate: 0.06,
            accel_noise: 0.02,
            gyro_noise: 0.005,
            gyro_bias_walk: 1e-4,
            rim_distance_noise: 0.01,
            rim_heading_noise: 0.15,
            mag_heading_noise: f64::INFINITY,
            zupt_velocity_noise: 0.01,
            confidence_floor: 0.1,
            coast_timeout_s: 0.5,
            initial_position: Point2::ORIGIN,
            initial_heading: 0.0,
        }
    }
}

impl FusionConfig {
    /// Validates the configuration, naming the offending field and the
    /// fix in the error message.
    pub(crate) fn validate(&self) -> Result<(), Error> {
        if self.zupt_window < 2 {
            return Err(Error::Config(format!(
                "zupt_window must be at least 2 samples to measure deviation, got {}",
                self.zupt_window
            )));
        }
        if self.zupt_sustain > 100_000 {
            return Err(Error::Config(format!(
                "zupt_sustain of {} samples would never declare stance; use something \
                 under 100000 (0 = bare windowed verdict)",
                self.zupt_sustain
            )));
        }
        for (name, v) in [
            ("zupt_accel_std", self.zupt_accel_std),
            ("zupt_gyro_rate", self.zupt_gyro_rate),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(Error::Config(format!(
                    "{name} must be a positive finite threshold, got {v}"
                )));
            }
        }
        for (name, v) in [
            ("accel_noise", self.accel_noise),
            ("gyro_noise", self.gyro_noise),
            ("gyro_bias_walk", self.gyro_bias_walk),
            ("rim_distance_noise", self.rim_distance_noise),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(Error::Config(format!(
                    "{name} must be finite and non-negative (0 = noiseless), got {v}"
                )));
            }
        }
        for (name, v) in [
            ("rim_heading_noise", self.rim_heading_noise),
            ("mag_heading_noise", self.mag_heading_noise),
        ] {
            // Infinite is the documented "disabled" value; NaN and
            // non-positive are configuration mistakes.
            if v.is_nan() || v <= 0.0 {
                return Err(Error::Config(format!(
                    "{name} must be positive (f64::INFINITY disables the correction), got {v}"
                )));
            }
        }
        if !(self.zupt_velocity_noise.is_finite() && self.zupt_velocity_noise > 0.0) {
            return Err(Error::Config(format!(
                "zupt_velocity_noise must be a positive finite sigma, got {}",
                self.zupt_velocity_noise
            )));
        }
        if !(0.0..1.0).contains(&self.confidence_floor) {
            return Err(Error::Config(format!(
                "confidence_floor must be in [0, 1) — 1 would drop every correction, got {}",
                self.confidence_floor
            )));
        }
        if !(self.coast_timeout_s.is_finite() && self.coast_timeout_s > 0.0) {
            return Err(Error::Config(format!(
                "coast_timeout_s must be a positive finite duration, got {}",
                self.coast_timeout_s
            )));
        }
        if !(self.initial_position.x.is_finite()
            && self.initial_position.y.is_finite()
            && self.initial_heading.is_finite())
        {
            return Err(Error::Config(format!(
                "initial pose must be finite, got position {:?} heading {}",
                self.initial_position, self.initial_heading
            )));
        }
        Ok(())
    }
}

/// Configuration of the map-constrained fusion pipeline (Fig. 21): the
/// particle-filter settings layered on top of the dead-reckoned track.
/// (This was named `FusionConfig` before the streaming fusion engine
/// took that name for its filter configuration.)
#[derive(Debug, Clone)]
pub struct MapFusionConfig {
    /// Particle-filter settings.
    pub filter: crate::particle::ParticleFilterConfig,
    /// How many samples to aggregate per filter step (the filter runs at
    /// a coarser rate than the CSI stream).
    pub samples_per_step: usize,
    /// RNG seed for the particle filter.
    pub seed: u64,
}

impl Default for MapFusionConfig {
    fn default() -> Self {
        Self {
            filter: crate::particle::ParticleFilterConfig::default(),
            samples_per_step: 20,
            seed: 0,
        }
    }
}
