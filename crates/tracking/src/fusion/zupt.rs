//! Streaming zero-velocity (stance) detection.
//!
//! The batch indicators in [`rim_sensors::reckoning`]
//! (`accel_movement_indicator` / `gyro_movement_indicator`) normalise a
//! windowed deviation by its global maximum, which needs the whole
//! recording. This is the same construction restated for streaming:
//! absolute thresholds on the windowed accelerometer-magnitude standard
//! deviation and mean absolute gyro rate, over a bounded ring, O(1) per
//! sample. RINS-W's observation is that these stance windows are where
//! an error-state filter earns its keep — velocity can be clamped and
//! the gyro reading *is* the bias.

use std::collections::VecDeque;

/// Windowed stance detector over the IMU stream.
#[derive(Debug, Clone)]
pub struct ZuptDetector {
    window: usize,
    accel_std_max: f64,
    gyro_rate_max: f64,
    /// Recent accelerometer magnitudes with running Σx and Σx².
    accel: VecDeque<f64>,
    accel_sum: f64,
    accel_sum_sq: f64,
    /// Recent absolute gyro rates with running Σ|ω|.
    gyro: VecDeque<f64>,
    gyro_sum: f64,
}

impl ZuptDetector {
    /// A detector declaring stance when both the accel deviation and the
    /// mean gyro rate over `window` samples sit under their thresholds.
    pub fn new(window: usize, accel_std_max: f64, gyro_rate_max: f64) -> Self {
        Self {
            window,
            accel_std_max,
            gyro_rate_max,
            accel: VecDeque::with_capacity(window),
            accel_sum: 0.0,
            accel_sum_sq: 0.0,
            gyro: VecDeque::with_capacity(window),
            gyro_sum: 0.0,
        }
    }

    /// Pushes one IMU sample (accelerometer magnitude, gyro rate) and
    /// returns whether the device is currently in stance. Until the
    /// window fills the detector reports *not* stationary — it never
    /// clamps velocity on less than a full window of evidence.
    pub fn push(&mut self, accel_norm: f64, gyro_z: f64) -> bool {
        if self.accel.len() == self.window {
            let old = self.accel.pop_front().expect("non-empty window");
            self.accel_sum -= old;
            self.accel_sum_sq -= old * old;
            let old_g = self.gyro.pop_front().expect("non-empty window");
            self.gyro_sum -= old_g;
        }
        self.accel.push_back(accel_norm);
        self.accel_sum += accel_norm;
        self.accel_sum_sq += accel_norm * accel_norm;
        let g = gyro_z.abs();
        self.gyro.push_back(g);
        self.gyro_sum += g;
        self.stationary()
    }

    /// The current stance verdict without pushing a sample.
    pub fn stationary(&self) -> bool {
        if self.accel.len() < self.window {
            return false;
        }
        let n = self.window as f64;
        let mean = self.accel_sum / n;
        // Running-sum variance can go ε-negative; clamp before sqrt.
        let var = (self.accel_sum_sq / n - mean * mean).max(0.0);
        var.sqrt() <= self.accel_std_max && self.gyro_sum / n <= self.gyro_rate_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_stance_only_after_a_full_quiet_window() {
        let mut d = ZuptDetector::new(4, 0.1, 0.05);
        assert!(!d.push(0.0, 0.0));
        assert!(!d.push(0.0, 0.0));
        assert!(!d.push(0.0, 0.0));
        assert!(d.push(0.0, 0.0), "fourth quiet sample fills the window");
    }

    #[test]
    fn movement_breaks_stance_and_stance_returns() {
        let mut d = ZuptDetector::new(4, 0.1, 0.05);
        for _ in 0..4 {
            d.push(0.01, 0.001);
        }
        assert!(d.stationary());
        // A vigorous sample spikes the windowed deviation.
        assert!(!d.push(2.0, 0.8));
        // Quiet again: stance returns once the spike leaves the window.
        let verdicts: Vec<bool> = (0..4).map(|_| d.push(0.01, 0.001)).collect();
        assert!(!verdicts[2], "spike still inside the window");
        assert!(verdicts[3], "spike evicted after window samples");
    }

    #[test]
    fn steady_rotation_is_not_stance() {
        // Constant gyro rate has zero deviation but a large mean — the
        // gyro term must veto stance on its own.
        let mut d = ZuptDetector::new(4, 0.1, 0.05);
        for _ in 0..8 {
            d.push(0.0, 0.5);
        }
        assert!(!d.stationary());
    }
}
