//! Streaming zero-velocity (stance) detection.
//!
//! The batch indicators in [`rim_sensors::reckoning`]
//! (`accel_movement_indicator` / `gyro_movement_indicator`) normalise a
//! windowed deviation by its global maximum, which needs the whole
//! recording. This is the same construction restated for streaming:
//! absolute thresholds on the windowed accelerometer-magnitude standard
//! deviation and mean absolute gyro rate, over a bounded ring, O(1) per
//! sample. RINS-W's observation is that these stance windows are where
//! an error-state filter earns its keep — velocity can be clamped and
//! the gyro reading *is* the bias.

use std::collections::VecDeque;

/// Windowed stance detector over the IMU stream.
#[derive(Debug, Clone)]
pub struct ZuptDetector {
    window: usize,
    /// Consecutive qualifying windowed verdicts required beyond the
    /// first before stance is declared (see [`Self::with_sustain`]).
    sustain: usize,
    accel_std_max: f64,
    gyro_rate_max: f64,
    /// Recent accelerometer magnitudes with running Σx and Σx².
    accel: VecDeque<f64>,
    accel_sum: f64,
    accel_sum_sq: f64,
    /// Recent absolute gyro rates with running Σ|ω|.
    gyro: VecDeque<f64>,
    gyro_sum: f64,
    /// Consecutive pushes whose windowed verdict qualified.
    streak: usize,
}

impl ZuptDetector {
    /// A detector declaring stance when both the accel deviation and the
    /// mean gyro rate over `window` samples sit under their thresholds.
    pub fn new(window: usize, accel_std_max: f64, gyro_rate_max: f64) -> Self {
        Self {
            window,
            sustain: 0,
            accel_std_max,
            gyro_rate_max,
            accel: VecDeque::with_capacity(window),
            accel_sum: 0.0,
            accel_sum_sq: 0.0,
            gyro: VecDeque::with_capacity(window),
            gyro_sum: 0.0,
            streak: 0,
        }
    }

    /// Requires `sustain` additional consecutive qualifying verdicts
    /// before stance is declared — `window + sustain` consecutive quiet
    /// samples in total.
    ///
    /// The bare windowed verdict misfires on gait: running has quiet
    /// accelerometer lulls between push-off bursts that outlast a short
    /// window mid-swing, and a false stance clamps the filter's velocity
    /// to zero while the body is moving at full speed. The sustain tail
    /// makes the required quiet span longer than one inter-step lull
    /// while keeping detection latency well under a genuine stop.
    pub fn with_sustain(mut self, sustain: usize) -> Self {
        self.sustain = sustain;
        self
    }

    /// Pushes one IMU sample (accelerometer magnitude, gyro rate) and
    /// returns whether the device is currently in stance. Until the
    /// window fills the detector reports *not* stationary — it never
    /// clamps velocity on less than a full window of evidence.
    pub fn push(&mut self, accel_norm: f64, gyro_z: f64) -> bool {
        if self.accel.len() == self.window {
            let old = self.accel.pop_front().expect("non-empty window");
            self.accel_sum -= old;
            self.accel_sum_sq -= old * old;
            let old_g = self.gyro.pop_front().expect("non-empty window");
            self.gyro_sum -= old_g;
        }
        self.accel.push_back(accel_norm);
        self.accel_sum += accel_norm;
        self.accel_sum_sq += accel_norm * accel_norm;
        let g = gyro_z.abs();
        self.gyro.push_back(g);
        self.gyro_sum += g;
        if self.window_quiet() {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        self.stationary()
    }

    /// The current stance verdict without pushing a sample.
    pub fn stationary(&self) -> bool {
        self.window_quiet() && self.streak > self.sustain
    }

    /// Whether the current window alone sits under both thresholds.
    fn window_quiet(&self) -> bool {
        if self.accel.len() < self.window {
            return false;
        }
        let n = self.window as f64;
        let mean = self.accel_sum / n;
        // Running-sum variance can go ε-negative; clamp before sqrt.
        let var = (self.accel_sum_sq / n - mean * mean).max(0.0);
        var.sqrt() <= self.accel_std_max && self.gyro_sum / n <= self.gyro_rate_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_stance_only_after_a_full_quiet_window() {
        let mut d = ZuptDetector::new(4, 0.1, 0.05);
        assert!(!d.push(0.0, 0.0));
        assert!(!d.push(0.0, 0.0));
        assert!(!d.push(0.0, 0.0));
        assert!(d.push(0.0, 0.0), "fourth quiet sample fills the window");
    }

    #[test]
    fn movement_breaks_stance_and_stance_returns() {
        let mut d = ZuptDetector::new(4, 0.1, 0.05);
        for _ in 0..4 {
            d.push(0.01, 0.001);
        }
        assert!(d.stationary());
        // A vigorous sample spikes the windowed deviation.
        assert!(!d.push(2.0, 0.8));
        // Quiet again: stance returns once the spike leaves the window.
        let verdicts: Vec<bool> = (0..4).map(|_| d.push(0.01, 0.001)).collect();
        assert!(!verdicts[2], "spike still inside the window");
        assert!(verdicts[3], "spike evicted after window samples");
    }

    #[test]
    fn steady_rotation_is_not_stance() {
        // Constant gyro rate has zero deviation but a large mean — the
        // gyro term must veto stance on its own.
        let mut d = ZuptDetector::new(4, 0.1, 0.05);
        for _ in 0..8 {
            d.push(0.0, 0.5);
        }
        assert!(!d.stationary());
    }

    #[test]
    fn sustain_rides_through_running_gait_lulls() {
        // A running stride is a push-off burst followed by a quiet
        // mid-swing lull. The lull (24 samples) outlasts the bare window
        // (16), so the unsustained detector false-fires every stride
        // while the body is moving at full speed.
        let stride = |d: &mut ZuptDetector| {
            let mut fired = false;
            for _ in 0..6 {
                fired |= d.push(3.0, 0.02); // heel strike / push-off
            }
            for _ in 0..24 {
                fired |= d.push(0.02, 0.01); // mid-swing lull
            }
            fired
        };

        let mut bare = ZuptDetector::new(16, 0.12, 0.06);
        let mut misfired = false;
        for _ in 0..6 {
            misfired |= stride(&mut bare);
        }
        assert!(misfired, "bare window false-fires inside a stride lull");

        // The sustained detector needs 16 + 16 consecutive quiet samples
        // — longer than any lull — so it stays quiet through the run...
        let mut sustained = ZuptDetector::new(16, 0.12, 0.06).with_sustain(16);
        for _ in 0..6 {
            assert!(!stride(&mut sustained), "no stance inside the run");
        }
        // ...and still engages on a genuine stop (a last push-off, then
        // sustained quiet).
        sustained.push(3.0, 0.02);
        let mut fired_at = None;
        for i in 0..64 {
            if sustained.push(0.02, 0.01) {
                fired_at = Some(i);
                break;
            }
        }
        assert_eq!(
            fired_at,
            Some(31),
            "stance engages exactly after window (16) + sustain (16) quiet samples"
        );
    }

    #[test]
    fn movement_resets_the_sustain_streak() {
        let mut d = ZuptDetector::new(4, 0.1, 0.05).with_sustain(4);
        for _ in 0..8 {
            d.push(0.0, 0.0);
        }
        assert!(d.stationary());
        // One loud sample drops the verdict and the streak restarts from
        // scratch: window refill plus the full sustain tail again.
        assert!(!d.push(2.0, 0.0));
        let verdicts: Vec<bool> = (0..8).map(|_| d.push(0.0, 0.0)).collect();
        assert!(!verdicts[6], "streak not yet rebuilt");
        assert!(verdicts[7], "stance returns after window + sustain");
    }
}
