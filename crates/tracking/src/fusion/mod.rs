//! RIM + inertial-sensor fusion (paper §6.3.3, Fig. 21).
//!
//! With a single 3-antenna NIC, RIM's distance estimates are excellent
//! but its heading resolution is limited, and a CSI outage stops the
//! estimate cold; an IMU is the complement on both axes. This module
//! fuses the two at two granularities:
//!
//! * **Batch** — [`Fuser::fuse`] combines a finished
//!   [`rim_core::MotionEstimate`] with a gyroscope track into a world
//!   trajectory, confidence-weighted per segment, and
//!   [`Fuser::fuse_with_map`] additionally runs the map-constrained
//!   particle filter (Fig. 21 shows both).
//! * **Streaming** — [`Fuser::stream`] wraps a [`rim_core::RimStream`]
//!   in a 2D error-state Kalman filter ([`FusedStream`]): IMU batches
//!   propagate position/heading/velocity/gyro-bias between RIM's
//!   segment and provisional corrections, zero-velocity updates clamp
//!   drift whenever the stance detector fires, and the filter keeps
//!   emitting [`rim_core::StreamEvent::Fused`] estimates through CSI
//!   gaps and blackouts. See DESIGN.md for the filter derivation.
//!
//! Everything is configured through [`Fuser::builder`], which validates
//! the full [`FusionConfig`] up front. The free functions at the bottom
//! of this module are the pre-builder API, kept as deprecated wrappers.

mod config;
mod engine;
mod eskf;
mod zupt;

pub use config::{FusionConfig, MapFusionConfig};
pub use engine::{FusedSession, FusedStream, Fuser, FuserBuilder};
pub use zupt::ZuptDetector;

use crate::particle::ParticleFilter;
use rim_channel::floorplan::Floorplan;
use rim_core::{MotionEstimate, SegmentEstimate};
use rim_dsp::geom::{Point2, Vec2};
use rim_sensors::integrate_gyro;

/// A fused trajectory: per-sample positions plus the raw inputs used.
#[derive(Debug, Clone)]
pub struct FusedTrack {
    /// Dead-reckoned positions (RIM distance + gyro heading).
    pub dead_reckoned: Vec<Point2>,
    /// Particle-filter corrected positions (empty if no filter was used).
    pub filtered: Vec<Point2>,
}

/// Down-weight factor for one segment given a minimum acceptable
/// confidence: 1.0 at or above `min_confidence`, scaling linearly down
/// to 0.0 for a segment whose [`rim_core::Confidence::score`] is 0
/// (a degraded stretch contributes proportionally less displacement
/// instead of diverging the fused track).
pub fn segment_weight(segment: &SegmentEstimate, min_confidence: f64) -> f64 {
    if min_confidence <= 0.0 {
        return 1.0;
    }
    (segment.confidence.score() / min_confidence).clamp(0.0, 1.0)
}

/// The batch dead-reckoning body shared by [`Fuser::fuse`] and the
/// deprecated free functions: displacement along the gyro-integrated
/// heading, scaled by the confidence weight of the containing segment
/// (samples outside any segment keep full weight — movement gating
/// already excludes them; `min_confidence <= 0` disables weighting).
fn fuse_weighted_impl(
    estimate: &MotionEstimate,
    gyro_z: &[f64],
    start: Point2,
    initial_heading: f64,
    min_confidence: f64,
) -> Vec<Point2> {
    assert_eq!(
        gyro_z.len(),
        estimate.speed_mps.len(),
        "gyro and RIM tracks must align"
    );
    let orientation = integrate_gyro(gyro_z, estimate.sample_rate_hz, initial_heading);
    let dt = 1.0 / estimate.sample_rate_hz;
    let mut pos = start;
    let mut out = Vec::with_capacity(gyro_z.len());
    for (i, &theta) in orientation.iter().enumerate() {
        let v = estimate.speed_mps[i];
        if v.is_finite() && v > 0.0 && estimate.moving[i] {
            let w = estimate
                .segments
                .iter()
                .find(|s| s.start <= i && i < s.end)
                .map_or(1.0, |s| segment_weight(s, min_confidence));
            pos += Vec2::from_angle(theta) * (v * dt * w);
        }
        out.push(pos);
    }
    out
}

/// The map-fusion body shared by [`Fuser::fuse_with_map`] and the
/// deprecated free function: unweighted dead reckoning plus the
/// particle filter stepped at a coarser rate.
fn fuse_map_impl(
    estimate: &MotionEstimate,
    gyro_z: &[f64],
    floorplan: &Floorplan,
    start: Point2,
    initial_heading: f64,
    config: &MapFusionConfig,
) -> FusedTrack {
    let dead_reckoned = fuse_weighted_impl(estimate, gyro_z, start, initial_heading, 0.0);

    let orientation = integrate_gyro(gyro_z, estimate.sample_rate_hz, initial_heading);
    let dt = 1.0 / estimate.sample_rate_hz;
    let mut pf = ParticleFilter::new(floorplan.clone(), start, config.filter, config.seed);
    let mut filtered = Vec::with_capacity(dead_reckoned.len());
    let mut pending_dx = Vec2::ZERO;
    let mut since_step = 0usize;
    let mut current = start;
    #[allow(clippy::needless_range_loop)] // three parallel series are indexed
    for i in 0..dead_reckoned.len() {
        let v = estimate.speed_mps[i];
        if v.is_finite() && v > 0.0 && estimate.moving[i] {
            pending_dx = pending_dx + Vec2::from_angle(orientation[i]) * (v * dt);
        }
        since_step += 1;
        if since_step >= config.samples_per_step {
            let d = pending_dx.norm();
            if d > 1e-9 {
                let dt_s = config.samples_per_step as f64 / estimate.sample_rate_hz;
                current = pf.step(d, pending_dx.angle(), dt_s);
            }
            pending_dx = Vec2::ZERO;
            since_step = 0;
        }
        filtered.push(current);
    }
    FusedTrack {
        dead_reckoned,
        filtered,
    }
}

/// Fuses RIM's per-sample speed with a gyroscope orientation track into
/// a world trajectory.
///
/// `gyro_z` must be sampled at the same rate as the motion estimate.
/// Samples where RIM reports no finite speed contribute no displacement.
///
/// # Panics
/// Panics if the gyro track length differs from the estimate's.
#[deprecated(
    since = "0.9.0",
    note = "build a `Fuser` (`Fuser::builder()…build()`) and call `Fuser::fuse`"
)]
pub fn fuse_with_gyro(
    estimate: &MotionEstimate,
    gyro_z: &[f64],
    start: Point2,
    initial_heading: f64,
) -> Vec<Point2> {
    fuse_weighted_impl(estimate, gyro_z, start, initial_heading, 0.0)
}

/// [`fuse_with_gyro`], with each sample's displacement scaled by the
/// confidence weight of the segment it belongs to.
///
/// # Panics
/// Panics if the gyro track length differs from the estimate's.
#[deprecated(
    since = "0.9.0",
    note = "build a `Fuser` with `confidence_floor` set and call `Fuser::fuse`"
)]
pub fn fuse_with_gyro_weighted(
    estimate: &MotionEstimate,
    gyro_z: &[f64],
    start: Point2,
    initial_heading: f64,
    min_confidence: f64,
) -> Vec<Point2> {
    fuse_weighted_impl(estimate, gyro_z, start, initial_heading, min_confidence)
}

/// Runs RIM + gyro fusion, with and without the map-constrained
/// particle filter (paper Fig. 21 shows both).
///
/// # Panics
/// Panics if the gyro track length differs from the estimate's.
#[deprecated(
    since = "0.9.0",
    note = "build a `Fuser` and call `Fuser::fuse_with_map` with a `MapFusionConfig`"
)]
pub fn fuse_with_map(
    estimate: &MotionEstimate,
    gyro_z: &[f64],
    floorplan: &Floorplan,
    start: Point2,
    initial_heading: f64,
    config: &MapFusionConfig,
) -> FusedTrack {
    fuse_map_impl(estimate, gyro_z, floorplan, start, initial_heading, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_core::pipeline::{Confidence, MotionEstimate, SegmentEstimate, SegmentKind};

    /// Builds a synthetic estimate: constant speed, no rotation, fully
    /// confident.
    fn synthetic_estimate(n: usize, fs: f64, v: f64) -> MotionEstimate {
        MotionEstimate {
            sample_rate_hz: fs,
            movement_indicator: vec![0.0; n],
            moving: vec![true; n],
            speed_mps: vec![v; n],
            heading_device: vec![Some(0.0); n],
            angular_rate: vec![0.0; n],
            segments: vec![SegmentEstimate {
                start: 0,
                end: n,
                kind: SegmentKind::Translation,
                distance_m: v * n as f64 / fs,
                heading_device: Some(0.0),
                rotation_rad: 0.0,
                confidence: Confidence {
                    peak_margin: 0.2,
                    interpolated_fraction: 0.0,
                    alignment_coverage: 1.0,
                },
            }],
        }
    }

    fn unweighted() -> Fuser {
        Fuser::builder().confidence_floor(0.0).build().unwrap()
    }

    #[test]
    fn fuse_straight_line() {
        let est = synthetic_estimate(200, 100.0, 1.0);
        let gyro = vec![0.0; 200];
        let track = unweighted().fuse(&est, &gyro);
        let end = *track.last().unwrap();
        assert!((end.x - 2.0).abs() < 1e-9, "{end:?}");
        assert!(end.y.abs() < 1e-12);
    }

    #[test]
    fn fuse_quarter_turn() {
        // Constant gyro rate turning 90° over the trace: the track curves.
        let n = 200;
        let fs = 100.0;
        let est = synthetic_estimate(n, fs, 1.0);
        let w = std::f64::consts::FRAC_PI_2 / (n as f64 / fs);
        let gyro = vec![w; n];
        let track = unweighted().fuse(&est, &gyro);
        let end = *track.last().unwrap();
        // An arc of length 2 with 90° net turn: endpoint at (R, R) with
        // R = 2/(π/2) ≈ 1.27.
        let r = 2.0 / std::f64::consts::FRAC_PI_2;
        assert!((end.x - r).abs() < 0.05, "{end:?}");
        assert!((end.y - r).abs() < 0.05, "{end:?}");
    }

    #[test]
    fn stationary_samples_do_not_move() {
        let mut est = synthetic_estimate(100, 100.0, 1.0);
        for m in est.moving.iter_mut() {
            *m = false;
        }
        let start = Point2::new(1.0, 1.0);
        let fuser = Fuser::builder()
            .confidence_floor(0.0)
            .initial_position(start)
            .build()
            .unwrap();
        let track = fuser.fuse(&est, &vec![0.0; 100]);
        assert!(track.iter().all(|p| p.distance(start) < 1e-12));
    }

    #[test]
    fn map_fusion_outputs_both_tracks() {
        let est = synthetic_estimate(400, 100.0, 0.5);
        let gyro = vec![0.0; 400];
        let fp = Floorplan::empty();
        let out = unweighted().fuse_with_map(&est, &gyro, &fp, &MapFusionConfig::default());
        assert_eq!(out.dead_reckoned.len(), 400);
        assert_eq!(out.filtered.len(), 400);
        let dr_end = out.dead_reckoned.last().unwrap();
        let pf_end = out.filtered.last().unwrap();
        assert!((dr_end.x - 2.0).abs() < 1e-6);
        assert!(pf_end.distance(*dr_end) < 0.3, "filter tracks the motion");
    }

    #[test]
    fn weighted_fusion_downweights_low_confidence_segments() {
        // Two back-to-back 1 m segments; the second is badly degraded.
        let n = 200;
        let fs = 100.0;
        let mut est = synthetic_estimate(n, fs, 1.0);
        let good = est.segments[0].clone();
        est.segments[0].end = n / 2;
        est.segments[0].distance_m = 1.0;
        est.segments.push(SegmentEstimate {
            start: n / 2,
            end: n,
            distance_m: 1.0,
            confidence: Confidence {
                peak_margin: 0.02,
                interpolated_fraction: 0.8,
                alignment_coverage: 0.3,
            },
            ..good
        });
        let gyro = vec![0.0; n];
        let full = unweighted().fuse(&est, &gyro);
        let weighted = Fuser::builder()
            .confidence_floor(0.5)
            .build()
            .unwrap()
            .fuse(&est, &gyro);
        let (full_end, wtd_end) = (full.last().unwrap(), weighted.last().unwrap());
        assert!((full_end.x - 2.0).abs() < 1e-9, "{full_end:?}");
        assert!(
            (wtd_end.x - 1.0).abs() < 0.1,
            "degraded second metre nearly vanishes: {wtd_end:?}"
        );
        // Confident segments are untouched.
        assert_eq!(full[n / 2 - 1], weighted[n / 2 - 1]);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_gyro_length_panics() {
        let est = synthetic_estimate(10, 100.0, 1.0);
        let _ = unweighted().fuse(&est, &[0.0; 5]);
    }
}
