//! Desktop handwriting (paper §6.3.1, Fig. 18).
//!
//! The paper moves the antenna array over a desk, writing letters, and
//! recovers recognisable trajectories with ~2.4 cm mean error. This module
//! provides single-path letter templates (strokes joined into one
//! continuous path, since the "pen" — the array — never lifts), trajectory
//! generation from them, and scoring against ground truth.

use rim_channel::trajectory::{polyline, OrientationMode, Trajectory};
use rim_dsp::geom::Point2;

/// Letter templates in a unit box (x, y ∈ [0, 1]), drawn as one continuous
/// polyline. Supported: the letters of "RIM" plus a few extras used in the
/// examples.
pub fn letter_template(c: char) -> Option<Vec<Point2>> {
    let p = |x: f64, y: f64| Point2::new(x, y);
    let pts = match c.to_ascii_uppercase() {
        'R' => vec![
            p(0.0, 0.0),
            p(0.0, 1.0),
            p(0.7, 1.0),
            p(0.8, 0.85),
            p(0.7, 0.55),
            p(0.0, 0.5),
            p(0.8, 0.0),
        ],
        'I' => vec![p(0.5, 1.0), p(0.5, 0.0)],
        'M' => vec![
            p(0.0, 0.0),
            p(0.0, 1.0),
            p(0.5, 0.4),
            p(1.0, 1.0),
            p(1.0, 0.0),
        ],
        'W' => vec![
            p(0.0, 1.0),
            p(0.25, 0.0),
            p(0.5, 0.7),
            p(0.75, 0.0),
            p(1.0, 1.0),
        ],
        'L' => vec![p(0.0, 1.0), p(0.0, 0.0), p(0.8, 0.0)],
        'N' => vec![p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0), p(1.0, 1.0)],
        'V' => vec![p(0.0, 1.0), p(0.5, 0.0), p(1.0, 1.0)],
        'Z' => vec![p(0.0, 1.0), p(1.0, 1.0), p(0.0, 0.0), p(1.0, 0.0)],
        'O' => vec![
            p(0.5, 1.0),
            p(0.05, 0.7),
            p(0.05, 0.3),
            p(0.5, 0.0),
            p(0.95, 0.3),
            p(0.95, 0.7),
            p(0.5, 1.0),
        ],
        _ => return None,
    };
    Some(pts)
}

/// Scales a unit-box template to world coordinates: `height_m` tall,
/// anchored with its box origin at `origin`.
pub fn scale_template(template: &[Point2], origin: Point2, height_m: f64) -> Vec<Point2> {
    template
        .iter()
        .map(|p| Point2::new(origin.x + p.x * height_m, origin.y + p.y * height_m))
        .collect()
}

/// A generated handwriting workload: the device trajectory plus the
/// ground-truth polyline for scoring.
#[derive(Debug, Clone)]
pub struct HandwritingRun {
    /// Device trajectory (constant device orientation — the writer slides
    /// the array without turning it).
    pub trajectory: Trajectory,
    /// Ground-truth path in world coordinates.
    pub truth: Vec<Point2>,
    /// The letter written.
    pub letter: char,
}

/// Generates the trajectory of writing `letter` at `origin`, `height_m`
/// tall, at `speed` m/s, sampled at `sample_rate_hz`. Returns `None` for
/// unsupported letters.
pub fn write_letter(
    letter: char,
    origin: Point2,
    height_m: f64,
    speed: f64,
    sample_rate_hz: f64,
) -> Option<HandwritingRun> {
    let template = letter_template(letter)?;
    let truth = scale_template(&template, origin, height_m);
    let trajectory = polyline(&truth, speed, sample_rate_hz, OrientationMode::Fixed(0.0));
    Some(HandwritingRun {
        trajectory,
        truth,
        letter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mean_projection_error;

    #[test]
    fn templates_exist_for_rim() {
        for c in ['R', 'I', 'M', 'r', 'i', 'm'] {
            assert!(letter_template(c).is_some(), "{c}");
        }
        assert!(letter_template('Q').is_none());
    }

    #[test]
    fn templates_fit_unit_box() {
        for c in ['R', 'I', 'M', 'W', 'L', 'N', 'V', 'Z', 'O'] {
            let t = letter_template(c).unwrap();
            assert!(t.len() >= 2);
            for p in &t {
                assert!(
                    (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y),
                    "{c}: {p:?}"
                );
            }
        }
    }

    #[test]
    fn scaling_anchors_and_sizes() {
        let t = letter_template('I').unwrap();
        let s = scale_template(&t, Point2::new(2.0, 3.0), 0.2);
        assert!((s[0].x - 2.1).abs() < 1e-12);
        assert!((s[0].y - 3.2).abs() < 1e-12);
        assert!((s[1].y - 3.0).abs() < 1e-12);
    }

    #[test]
    fn write_letter_produces_consistent_run() {
        let run = write_letter('M', Point2::new(0.0, 1.0), 0.2, 0.3, 200.0).unwrap();
        // The trajectory traces the truth: its own samples project onto
        // the truth polyline with zero error.
        let track: Vec<Point2> = run.trajectory.poses().iter().map(|p| p.pos).collect();
        let e = mean_projection_error(&track, &run.truth);
        assert!(e < 1e-9, "trajectory follows template: {e}");
        // Path length matches the template's.
        let expect: f64 = run.truth.windows(2).map(|w| w[0].distance(w[1])).sum();
        assert!((run.trajectory.total_distance() - expect).abs() < 0.01);
        assert_eq!(run.letter, 'M');
    }

    #[test]
    fn unsupported_letter_is_none() {
        assert!(write_letter('#', Point2::ORIGIN, 0.2, 0.3, 200.0).is_none());
    }
}
