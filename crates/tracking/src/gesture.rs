//! Gesture recognition (paper §6.3.2, Fig. 19).
//!
//! The paper's pointer unit performs four gestures — move towards
//! left/right/up/down and back — and recognises them from the speed
//! pattern: "RIM will observe speed in one direction in which the user's
//! hand moves towards, immediately followed by a speed in the opposite
//! direction when the hand moves back." We implement exactly that: find a
//! moving burst, check it splits into two opposite-heading phases, and
//! quantise the first phase's heading to the four gesture directions.

use rim_channel::trajectory::{back_and_forth, Trajectory};
use rim_core::MotionEstimate;
use rim_dsp::geom::Point2;
use rim_dsp::stats::{angle_diff, circular_mean};

/// The four gestures of the paper's study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gesture {
    /// Move towards −x and back.
    Left,
    /// Move towards +x and back.
    Right,
    /// Move towards +y and back.
    Up,
    /// Move towards −y and back.
    Down,
}

impl Gesture {
    /// All gestures.
    pub const ALL: [Gesture; 4] = [Gesture::Left, Gesture::Right, Gesture::Up, Gesture::Down];

    /// Outbound heading of the gesture, radians.
    pub fn heading(self) -> f64 {
        match self {
            Gesture::Right => 0.0,
            Gesture::Up => std::f64::consts::FRAC_PI_2,
            Gesture::Left => std::f64::consts::PI,
            Gesture::Down => -std::f64::consts::FRAC_PI_2,
        }
    }

    /// The gesture whose heading is closest to `theta`.
    pub fn from_heading(theta: f64) -> Gesture {
        *Gesture::ALL
            .iter()
            .min_by(|a, b| {
                angle_diff(a.heading(), theta)
                    .partial_cmp(&angle_diff(b.heading(), theta))
                    .unwrap()
            })
            .expect("ALL is non-empty")
    }
}

/// Gesture-detector parameters.
#[derive(Debug, Clone, Copy)]
pub struct GestureConfig {
    /// Minimum travelled distance of each phase, metres.
    pub min_phase_m: f64,
    /// Maximum angular deviation of the return phase from the exact
    /// opposite of the outbound phase, radians.
    pub reversal_tolerance: f64,
    /// Maximum angular deviation of the outbound heading from one of the
    /// four gesture directions, radians.
    pub direction_tolerance: f64,
}

impl Default for GestureConfig {
    fn default() -> Self {
        Self {
            min_phase_m: 0.05,
            reversal_tolerance: 40f64.to_radians(),
            direction_tolerance: 30f64.to_radians(),
        }
    }
}

/// Detects a gesture in a motion estimate. Returns `None` when no
/// out-and-back pattern is present (the no-false-trigger path).
pub fn detect_gesture(estimate: &MotionEstimate, config: &GestureConfig) -> Option<Gesture> {
    let dt = 1.0 / estimate.sample_rate_hz;
    // Collect (heading, step) for every moving sample with an estimate.
    let steps: Vec<(f64, f64)> = (0..estimate.speed_mps.len())
        .filter_map(|i| {
            let v = estimate.speed_mps[i];
            let h = estimate.heading_device[i]?;
            if estimate.moving[i] && v.is_finite() && v > 0.0 {
                Some((h, v * dt))
            } else {
                None
            }
        })
        .collect();
    if steps.is_empty() {
        return None;
    }
    // Split into the outbound phase and the return phase at the largest
    // heading reversal.
    let outbound_heading = {
        let hs: Vec<f64> = steps.iter().map(|&(h, _)| h).collect();
        // The first third establishes the outbound direction.
        let take = (hs.len() / 3).max(1);
        circular_mean(&hs[..take])
    };
    if !outbound_heading.is_finite() {
        return None;
    }
    let mut out_dist = 0.0;
    let mut back_dist = 0.0;
    for &(h, d) in &steps {
        if angle_diff(h, outbound_heading) < std::f64::consts::FRAC_PI_2 {
            out_dist += d;
        } else if angle_diff(h, outbound_heading + std::f64::consts::PI) < config.reversal_tolerance
        {
            back_dist += d;
        }
    }
    if out_dist < config.min_phase_m || back_dist < config.min_phase_m {
        return None;
    }
    let g = Gesture::from_heading(outbound_heading);
    if angle_diff(g.heading(), outbound_heading) > config.direction_tolerance {
        return None;
    }
    Some(g)
}

/// Generates the device trajectory of performing a gesture: out
/// `amplitude_m`, a short hold, and back, at `speed` m/s.
pub fn gesture_trajectory(
    gesture: Gesture,
    start: Point2,
    amplitude_m: f64,
    speed: f64,
    sample_rate_hz: f64,
) -> Trajectory {
    back_and_forth(
        start,
        gesture.heading(),
        amplitude_m,
        speed,
        0.15,
        sample_rate_hz,
        // The pointer is held still; only the hand translates.
        rim_channel::trajectory::OrientationMode::Fixed(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_core::pipeline::MotionEstimate;

    fn estimate_from_phases(phases: &[(f64, usize)], fs: f64) -> MotionEstimate {
        // Each phase: (heading, n_samples) at 0.3 m/s.
        let n: usize = phases.iter().map(|&(_, k)| k).sum();
        let mut heading = Vec::with_capacity(n);
        for &(h, k) in phases {
            heading.extend(std::iter::repeat_n(Some(h), k));
        }
        MotionEstimate {
            sample_rate_hz: fs,
            movement_indicator: vec![0.0; n],
            moving: vec![true; n],
            speed_mps: vec![0.3; n],
            heading_device: heading,
            angular_rate: vec![0.0; n],
            segments: Vec::new(),
        }
    }

    #[test]
    fn recognises_all_four() {
        for g in Gesture::ALL {
            let est = estimate_from_phases(
                &[
                    (g.heading(), 100),
                    (g.heading() + std::f64::consts::PI, 100),
                ],
                200.0,
            );
            assert_eq!(
                detect_gesture(&est, &GestureConfig::default()),
                Some(g),
                "{g:?}"
            );
        }
    }

    #[test]
    fn one_way_motion_is_not_a_gesture() {
        let est = estimate_from_phases(&[(0.0, 200)], 200.0);
        assert_eq!(detect_gesture(&est, &GestureConfig::default()), None);
    }

    #[test]
    fn too_short_motion_is_rejected() {
        let est = estimate_from_phases(&[(0.0, 10), (std::f64::consts::PI, 10)], 200.0);
        assert_eq!(detect_gesture(&est, &GestureConfig::default()), None);
    }

    #[test]
    fn static_estimate_is_rejected() {
        let mut est = estimate_from_phases(&[(0.0, 100)], 200.0);
        for m in est.moving.iter_mut() {
            *m = false;
        }
        assert_eq!(detect_gesture(&est, &GestureConfig::default()), None);
    }

    #[test]
    fn diagonal_motion_is_rejected() {
        // 45° out-and-back is ambiguous between Right and Up: outside the
        // direction tolerance, no gesture.
        let d = 45f64.to_radians();
        let est = estimate_from_phases(&[(d, 100), (d + std::f64::consts::PI, 100)], 200.0);
        assert_eq!(detect_gesture(&est, &GestureConfig::default()), None);
    }

    #[test]
    fn from_heading_quantises() {
        assert_eq!(Gesture::from_heading(0.1), Gesture::Right);
        assert_eq!(Gesture::from_heading(3.1), Gesture::Left);
        assert_eq!(Gesture::from_heading(1.5), Gesture::Up);
        assert_eq!(Gesture::from_heading(-1.6), Gesture::Down);
    }

    #[test]
    fn trajectory_is_out_and_back() {
        let t = gesture_trajectory(Gesture::Up, Point2::ORIGIN, 0.2, 0.4, 200.0);
        let end = t.poses().last().unwrap().pos;
        assert!(end.distance(Point2::ORIGIN) < 1e-6, "returns to start");
        assert!((t.total_distance() - 0.4).abs() < 0.01);
    }
}
