//! # rim-tracking
//!
//! The application layer of the RIM reproduction — the systems the paper
//! builds on top of the core inertial measurements (§6.3):
//!
//! * [`particle`] — map-constrained particle filter (discard particles
//!   that cross walls) for floor-scale tracking;
//! * [`fusion`] — the RIM×IMU fusion engine: batch dead reckoning with
//!   confidence weighting, the particle-filtered variant (Fig. 21), and
//!   the streaming error-state Kalman filter with zero-velocity updates
//!   behind [`Fuser`] / [`FusedStream`];
//! * [`handwriting`] — letter templates, writing workloads and scoring
//!   (Fig. 18);
//! * [`gesture`] — the four-direction pointer gestures and their
//!   recogniser (Fig. 19);
//! * [`metrics`] — the error measures used across the evaluation;
//! * [`calibration`] — RIM-assisted calibration of inertial sensors
//!   (gyro bias from CSI-detected static periods, §7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod fusion;
pub mod gesture;
pub mod handwriting;
pub mod metrics;
pub mod particle;

pub use calibration::{debias_gyro, gyro_bias_from_static, magnetometer_offset};
pub use fusion::{
    segment_weight, FusedSession, FusedStream, FusedTrack, Fuser, FuserBuilder, FusionConfig,
    MapFusionConfig, ZuptDetector,
};
pub use gesture::{detect_gesture, gesture_trajectory, Gesture, GestureConfig};
pub use handwriting::{letter_template, write_letter, HandwritingRun};
pub use metrics::{
    distance_error, heading_error, mean_projection_error, point_to_polyline, pointwise_errors,
    relative_distance_error, rotation_error,
};
pub use particle::{Particle, ParticleFilter, ParticleFilterConfig};
