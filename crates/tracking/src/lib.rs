//! # rim-tracking
//!
//! The application layer of the RIM reproduction — the systems the paper
//! builds on top of the core inertial measurements (§6.3):
//!
//! * [`particle`] — map-constrained particle filter (discard particles
//!   that cross walls) for floor-scale tracking;
//! * [`fusion`] — RIM distance + gyroscope heading dead reckoning and its
//!   particle-filtered variant (Fig. 21);
//! * [`handwriting`] — letter templates, writing workloads and scoring
//!   (Fig. 18);
//! * [`gesture`] — the four-direction pointer gestures and their
//!   recogniser (Fig. 19);
//! * [`metrics`] — the error measures used across the evaluation;
//! * [`calibration`] — RIM-assisted calibration of inertial sensors
//!   (gyro bias from CSI-detected static periods, §7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod fusion;
pub mod gesture;
pub mod handwriting;
pub mod metrics;
pub mod particle;

pub use calibration::{debias_gyro, gyro_bias_from_static, magnetometer_offset};
pub use fusion::{
    fuse_with_gyro, fuse_with_gyro_weighted, fuse_with_map, segment_weight, FusedTrack,
    FusionConfig,
};
pub use gesture::{detect_gesture, gesture_trajectory, Gesture, GestureConfig};
pub use handwriting::{letter_template, write_letter, HandwritingRun};
pub use metrics::{
    distance_error, heading_error, mean_projection_error, point_to_polyline, pointwise_errors,
    relative_distance_error, rotation_error,
};
pub use particle::{Particle, ParticleFilter, ParticleFilterConfig};
