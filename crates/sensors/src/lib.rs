//! # rim-sensors
//!
//! MEMS inertial-sensor substrate: the *baselines* RIM is evaluated
//! against. Simulates consumer accelerometer / gyroscope / magnetometer
//! streams from a ground-truth trajectory with the standard error model
//! (turn-on bias, white noise, bias random walk, scale error, and a
//! spatial magnetometer distortion field), plus the dead-reckoning
//! estimators built on them: gyro integration, strapdown double
//! integration, threshold movement detectors and a step counter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod imu;
pub mod reckoning;
pub mod spec;

pub use imu::{ImuConfig, ImuError, ImuRecording, SimulatedImu};
pub use reckoning::{
    accel_movement_indicator, double_integrate_accel, gyro_movement_indicator, gyro_rotation_angle,
    integrate_gyro, track_length, StepCounter,
};
pub use spec::{consumer_accelerometer, consumer_gyroscope, consumer_magnetometer, AxisSpec};
