//! MEMS sensor error specifications.
//!
//! The standard consumer-IMU error model: constant bias (per power-up),
//! white noise (density · √rate), bias random walk (instability), and
//! scale-factor error. Defaults are typical of the Bosch BNO055 class of
//! parts the paper's prototype carries (§5).

use serde::{Deserialize, Serialize};

/// Error specification of a single sensor axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AxisSpec {
    /// Constant (turn-on) bias, in the sensor's output unit.
    pub bias: f64,
    /// White-noise density, unit/√Hz; per-sample σ = density · √(rate/2)…
    /// we use the simpler convention σ = density · √rate.
    pub noise_density: f64,
    /// Bias random-walk intensity, unit/√s — models bias instability.
    pub bias_walk: f64,
    /// Multiplicative scale-factor error (0.01 = 1 % too large).
    pub scale_error: f64,
}

impl AxisSpec {
    /// An ideal, error-free axis.
    pub fn ideal() -> Self {
        Self {
            bias: 0.0,
            noise_density: 0.0,
            bias_walk: 0.0,
            scale_error: 0.0,
        }
    }
}

/// Consumer-grade accelerometer (per axis, m/s² units).
///
/// ~25 mg turn-on bias, 300 µg/√Hz noise: enough to ruin double-integrated
/// position within seconds, as the paper notes (§6.2.1: accelerometer
/// "easily produces errors of tens of meters").
pub fn consumer_accelerometer() -> AxisSpec {
    AxisSpec {
        bias: 0.025 * 9.81,
        noise_density: 300e-6 * 9.81,
        bias_walk: 0.002 * 9.81,
        scale_error: 0.005,
    }
}

/// Consumer-grade gyroscope (z axis, rad/s units).
///
/// ~0.5 °/s turn-on bias (assumed mostly calibrated away at rest to
/// 0.05 °/s residual), 0.014 °/s/√Hz noise, 10 °/h instability — good
/// enough that integrated rotation over tens of seconds stays within a few
/// degrees, which is why the gyroscope beats RIM on rotating angle
/// (paper Fig. 13).
pub fn consumer_gyroscope() -> AxisSpec {
    AxisSpec {
        bias: 0.05f64.to_radians(),
        noise_density: 0.014f64.to_radians(),
        bias_walk: (10.0f64 / 3600.0).to_radians(),
        scale_error: 0.002,
    }
}

/// Consumer-grade magnetometer heading output (radians): the dominant
/// error indoors is environmental distortion, handled separately; this
/// spec covers the sensor-intrinsic part.
pub fn consumer_magnetometer() -> AxisSpec {
    AxisSpec {
        bias: 1.0f64.to_radians(),
        noise_density: 0.5f64.to_radians(),
        bias_walk: 0.0,
        scale_error: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_all_zero() {
        let s = AxisSpec::ideal();
        assert_eq!(s.bias, 0.0);
        assert_eq!(s.noise_density, 0.0);
        assert_eq!(s.bias_walk, 0.0);
        assert_eq!(s.scale_error, 0.0);
    }

    #[test]
    fn consumer_specs_sane() {
        let a = consumer_accelerometer();
        assert!(a.bias > 0.1 && a.bias < 1.0, "tens of mg in m/s²");
        let g = consumer_gyroscope();
        assert!(g.bias < 0.01, "sub-degree-per-second residual gyro bias");
        let m = consumer_magnetometer();
        assert!(m.bias.to_degrees() < 5.0);
    }
}
