//! Dead-reckoning baselines built on the simulated IMU streams.
//!
//! These are the comparison systems of the paper's evaluation: gyroscope
//! integration for rotating angle (Fig. 13), accelerometer double
//! integration for distance (§6.2.1 explains why it is hopeless), simple
//! threshold movement detectors (Fig. 7), and a pedestrian step counter
//! (the state of practice for inertial distance, §8).

use crate::imu::ImuRecording;
use rim_dsp::geom::{Point2, Vec2};

/// Integrates the z gyroscope into an orientation track (radians),
/// starting from `initial`.
pub fn integrate_gyro(gyro_z: &[f64], sample_rate_hz: f64, initial: f64) -> Vec<f64> {
    let dt = 1.0 / sample_rate_hz;
    let mut out = Vec::with_capacity(gyro_z.len());
    let mut theta = initial;
    for &w in gyro_z {
        theta += w * dt;
        out.push(theta);
    }
    out
}

/// Gyroscope rotating-angle estimate over a whole recording: the net
/// integrated angle (radians).
pub fn gyro_rotation_angle(rec: &ImuRecording) -> f64 {
    rec.gyro_z.iter().sum::<f64>() / rec.sample_rate_hz
}

/// Double-integrates body-frame acceleration into positions, given an
/// orientation track (e.g. from [`integrate_gyro`] or a magnetometer).
///
/// This is the textbook strapdown mechanisation that the paper's
/// accelerometer comparison uses — and it diverges quadratically with any
/// bias, which is the point.
pub fn double_integrate_accel(
    accel_body: &[Vec2],
    orientation: &[f64],
    sample_rate_hz: f64,
    start: Point2,
) -> Vec<Point2> {
    assert_eq!(
        accel_body.len(),
        orientation.len(),
        "acceleration and orientation tracks must align"
    );
    let dt = 1.0 / sample_rate_hz;
    let mut pos = start;
    let mut vel = Vec2::ZERO;
    let mut out = Vec::with_capacity(accel_body.len());
    for (a_body, &theta) in accel_body.iter().zip(orientation) {
        let a_world = a_body.rotate(theta);
        vel = vel + a_world * dt;
        pos += vel * dt;
        out.push(pos);
    }
    out
}

/// Total path length of a position track.
pub fn track_length(track: &[Point2]) -> f64 {
    track.windows(2).map(|w| w[0].distance(w[1])).sum()
}

/// Movement indicator from the accelerometer: centred RMS of the
/// acceleration magnitude over a sliding window, normalised to `[0, 1]`
/// by its own maximum — the conventional threshold detector the paper
/// compares against in Fig. 7.
pub fn accel_movement_indicator(accel_body: &[Vec2], half_window: usize) -> Vec<f64> {
    let mags: Vec<f64> = accel_body.iter().map(|a| a.norm()).collect();
    windowed_deviation(&mags, half_window)
}

/// Movement indicator from the gyroscope (same construction).
pub fn gyro_movement_indicator(gyro_z: &[f64], half_window: usize) -> Vec<f64> {
    windowed_deviation(gyro_z, half_window)
}

/// Sliding-window standard deviation, normalised by the global maximum.
fn windowed_deviation(x: &[f64], half: usize) -> Vec<f64> {
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let w = &x[lo..hi];
        let m = w.iter().sum::<f64>() / w.len() as f64;
        let v = w.iter().map(|&u| (u - m) * (u - m)).sum::<f64>() / w.len() as f64;
        out.push(v.sqrt());
    }
    let peak = out.iter().cloned().fold(0.0f64, f64::max);
    if peak > 0.0 {
        for v in &mut out {
            *v /= peak;
        }
    }
    out
}

/// A pedestrian step counter: peaks of the low-passed acceleration
/// magnitude above a threshold, separated by a refractory period.
/// Distance = steps × stride length — the coarse state of practice for
/// inertial distance (paper §8, [44]).
#[derive(Debug, Clone)]
pub struct StepCounter {
    /// Detection threshold on the band-passed magnitude, m/s².
    pub threshold: f64,
    /// Minimum spacing between steps, seconds.
    pub refractory_s: f64,
    /// Assumed stride length, metres.
    pub stride_m: f64,
}

impl Default for StepCounter {
    fn default() -> Self {
        Self {
            threshold: 1.0,
            refractory_s: 0.35,
            stride_m: 0.7,
        }
    }
}

impl StepCounter {
    /// Counts steps in an accelerometer stream.
    pub fn count_steps(&self, accel_body: &[Vec2], sample_rate_hz: f64) -> usize {
        let mags: Vec<f64> = accel_body.iter().map(|a| a.norm()).collect();
        let smooth = rim_dsp::filter::low_pass(&mags, 4.0, sample_rate_hz);
        let refractory = (self.refractory_s * sample_rate_hz) as usize;
        let mut steps = 0usize;
        let mut last_step: Option<usize> = None;
        for i in 1..smooth.len().saturating_sub(1) {
            let is_peak = smooth[i] > smooth[i - 1]
                && smooth[i] >= smooth[i + 1]
                && smooth[i] > self.threshold;
            if is_peak {
                let ok = last_step.is_none_or(|l| i - l >= refractory);
                if ok {
                    steps += 1;
                    last_step = Some(i);
                }
            }
        }
        steps
    }

    /// Step-counted distance estimate.
    pub fn distance(&self, accel_body: &[Vec2], sample_rate_hz: f64) -> f64 {
        self.count_steps(accel_body, sample_rate_hz) as f64 * self.stride_m
    }
}

/// Complementary filter fusing gyroscope rate with magnetometer absolute
/// orientation: the gyro path tracks fast changes without magnetometer
/// noise, while the magnetometer path pins the long-term absolute angle
/// the gyro would drift away from. `blend` is the per-sample weight pulled
/// toward the magnetometer (0 = pure gyro, 1 = pure magnetometer).
///
/// # Panics
/// Panics on length mismatch or `blend` outside `[0, 1]`.
pub fn complementary_orientation(
    gyro_z: &[f64],
    mag_orientation: &[f64],
    sample_rate_hz: f64,
    blend: f64,
) -> Vec<f64> {
    assert_eq!(
        gyro_z.len(),
        mag_orientation.len(),
        "gyro and magnetometer tracks must align"
    );
    assert!((0.0..=1.0).contains(&blend), "blend in [0, 1]");
    let dt = 1.0 / sample_rate_hz;
    let mut theta = mag_orientation.first().copied().unwrap_or(0.0);
    let mut out = Vec::with_capacity(gyro_z.len());
    for (&w, &m) in gyro_z.iter().zip(mag_orientation) {
        let predicted = theta + w * dt;
        // Blend toward the magnetometer along the shortest arc.
        let innovation = rim_dsp::stats::wrap_angle(m - predicted);
        theta = predicted + blend * innovation;
        out.push(theta);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imu::{ImuConfig, SimulatedImu};
    use rim_channel::trajectory::{dwell, rotate_in_place, stop_and_go, OrientationMode};

    #[test]
    fn gyro_integration_recovers_rotation() {
        let traj = rotate_in_place(Point2::ORIGIN, 0.2, 2.0, 1.0, 200.0);
        let rec = SimulatedImu::new(ImuConfig::ideal(), 1).sample(&traj);
        let track = integrate_gyro(&rec.gyro_z, 200.0, 0.2);
        let end = *track.last().unwrap();
        assert!(
            (end - 2.2).abs() < 0.02,
            "2 rad rotation from 0.2, got {end}"
        );
        assert!((gyro_rotation_angle(&rec) - 2.0).abs() < 0.02);
    }

    #[test]
    fn consumer_gyro_rotation_is_accurate_to_degrees() {
        // The paper's Fig. 13 point: gyroscopes are genuinely good at
        // in-place rotation over short spans.
        let traj = rotate_in_place(
            Point2::ORIGIN,
            0.0,
            std::f64::consts::PI,
            std::f64::consts::FRAC_PI_2,
            200.0,
        );
        let rec = SimulatedImu::new(ImuConfig::consumer(), 5).sample(&traj);
        let est = gyro_rotation_angle(&rec);
        let err = (est - std::f64::consts::PI).abs().to_degrees();
        assert!(err < 5.0, "gyro within a few degrees, got {err}°");
    }

    #[test]
    fn ideal_double_integration_tracks_line() {
        let traj = rim_channel::trajectory::line_ramped(
            Point2::ORIGIN,
            0.0,
            2.0,
            1.0,
            2.0,
            200.0,
            OrientationMode::FollowPath,
        );
        let rec = SimulatedImu::new(ImuConfig::ideal(), 1).sample(&traj);
        let orient: Vec<f64> = traj.poses().iter().map(|p| p.orientation).collect();
        let track = double_integrate_accel(&rec.accel_body, &orient, 200.0, Point2::ORIGIN);
        let end = *track.last().unwrap();
        // Ideal sensors: lands within numerical-integration error.
        assert!(
            (end.x - 2.0).abs() < 0.05 && end.y.abs() < 0.01,
            "ideal dead-reckoning works: {end:?}"
        );
    }

    #[test]
    fn consumer_double_integration_diverges() {
        // §6.2.1: accelerometer dead reckoning produces errors of metres
        // within a 10-second trace.
        let traj = rim_channel::trajectory::line_ramped(
            Point2::ORIGIN,
            0.0,
            10.0,
            1.0,
            2.0,
            200.0,
            OrientationMode::FollowPath,
        );
        let rec = SimulatedImu::new(ImuConfig::consumer(), 7).sample(&traj);
        let orient: Vec<f64> = traj.poses().iter().map(|p| p.orientation).collect();
        let track = double_integrate_accel(&rec.accel_body, &orient, 200.0, Point2::ORIGIN);
        let end_err = track.last().unwrap().distance(Point2::new(10.0, 0.0));
        assert!(end_err > 2.0, "biased accel diverges, err = {end_err} m");
    }

    #[test]
    fn movement_indicators_separate_motion_from_rest() {
        let traj = stop_and_go(Point2::ORIGIN, 0.0, 1.0, 1.0, 2, 1.0, 200.0);
        let rec = SimulatedImu::new(ImuConfig::consumer(), 3).sample(&traj);
        let acc_ind = accel_movement_indicator(&rec.accel_body, 20);
        // During the dwell (middle of the trace) the indicator is lower
        // than at the motion transients.
        let mid = acc_ind.len() / 2;
        let dwell_level = acc_ind[mid];
        let peak = acc_ind.iter().cloned().fold(0.0f64, f64::max);
        assert!(peak == 1.0, "normalised");
        assert!(dwell_level < 0.5, "rest is quiet: {dwell_level}");
        let gyr_ind = gyro_movement_indicator(&rec.gyro_z, 20);
        assert_eq!(gyr_ind.len(), rec.len());
    }

    #[test]
    fn step_counter_counts_oscillations() {
        // Synthesise a walking-like bobbing acceleration at 2 steps/s.
        let fs = 100.0;
        let n = 1000;
        let accel: Vec<Vec2> = (0..n)
            .map(|k| {
                let t = k as f64 / fs;
                Vec2::new(2.5 * (std::f64::consts::TAU * 2.0 * t).sin(), 0.0)
            })
            .collect();
        let counter = StepCounter::default();
        let steps = counter.count_steps(&accel, fs);
        // 10 seconds at 2 Hz ≈ 20 steps (edge effects allow slack).
        assert!((15..=22).contains(&steps), "got {steps}");
        let d = counter.distance(&accel, fs);
        assert!((d - steps as f64 * 0.7).abs() < 1e-9);
    }

    #[test]
    fn step_counter_silent_at_rest() {
        let traj = dwell(Point2::ORIGIN, 0.0, 3.0, 100.0);
        let rec = SimulatedImu::new(ImuConfig::consumer(), 2).sample(&traj);
        assert_eq!(
            StepCounter::default().count_steps(&rec.accel_body, 100.0),
            0
        );
    }

    #[test]
    fn track_length_sums_segments() {
        let track = [
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 4.0),
            Point2::new(3.0, 0.0),
        ];
        assert!((track_length(&track) - 9.0).abs() < 1e-12);
        assert_eq!(track_length(&[]), 0.0);
    }

    #[test]
    fn complementary_tracks_truth_better_than_either() {
        // Rotating at 0.5 rad/s; gyro has bias, magnetometer has noise +
        // constant distortion-free output.
        let fs = 100.0;
        let n = 1000;
        let truth: Vec<f64> = (0..n).map(|i| 0.5 * i as f64 / fs).collect();
        let gyro: Vec<f64> = (0..n).map(|_| 0.5 + 0.05).collect(); // 0.05 rad/s bias
        let mag: Vec<f64> = truth
            .iter()
            .enumerate()
            .map(|(i, &t)| t + 0.2 * ((i * 7919 % 100) as f64 / 100.0 - 0.5))
            .collect();
        let fused = complementary_orientation(&gyro, &mag, fs, 0.02);
        let gyro_only = integrate_gyro(&gyro, fs, 0.0);
        let err = |track: &[f64]| -> f64 {
            track
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / n as f64
        };
        // Pure gyro drifts (bias × time ≈ 0.25 rad mean); fused stays tight.
        assert!(err(&gyro_only) > 0.15, "gyro drifts: {}", err(&gyro_only));
        assert!(err(&fused) < 0.08, "fused tracks truth: {}", err(&fused));
    }

    #[test]
    fn complementary_extremes() {
        let gyro = vec![1.0; 10];
        let mag = vec![0.5; 10];
        // blend = 1: output equals the magnetometer exactly.
        let pure_mag = complementary_orientation(&gyro, &mag, 10.0, 1.0);
        assert!(pure_mag.iter().all(|&v| (v - 0.5).abs() < 1e-12));
        // blend = 0: pure gyro integration from the magnetometer's start.
        let pure_gyro = complementary_orientation(&gyro, &mag, 10.0, 0.0);
        assert!((pure_gyro[9] - (0.5 + 1.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "blend")]
    fn complementary_rejects_bad_blend() {
        let _ = complementary_orientation(&[0.0], &[0.0], 10.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_tracks_panic() {
        let _ = double_integrate_accel(&[Vec2::ZERO], &[0.0, 1.0], 100.0, Point2::ORIGIN);
    }
}
