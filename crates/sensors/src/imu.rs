//! Simulated IMU: samples a ground-truth trajectory into noisy
//! accelerometer / gyroscope / magnetometer streams.
//!
//! The true signals come from finite differences of the trajectory: body-
//! frame linear acceleration for the accelerometer, orientation rate for
//! the z gyroscope, absolute orientation for the magnetometer. Each stream
//! then passes through the [`AxisSpec`] error model. A spatially-varying
//! distortion field corrupts the magnetometer the way shelves and pillars
//! do indoors (paper §1: "easily distorted by surrounding environments").

use crate::spec::AxisSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rim_channel::trajectory::Trajectory;
use rim_dsp::geom::{Point2, Vec2};

/// Errors from IMU recording validation and (de)serialisation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ImuError {
    /// Accel/gyro/mag stream lengths disagree.
    Ragged {
        /// Accelerometer sample count.
        accel: usize,
        /// Gyroscope sample count.
        gyro: usize,
        /// Magnetometer sample count.
        mag: usize,
    },
    /// The sample rate is not a positive finite number.
    BadSampleRate(f64),
    /// A serialised recording could not be decoded.
    Format(String),
}

impl std::fmt::Display for ImuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Ragged { accel, gyro, mag } => write!(
                f,
                "ragged IMU recording: {accel} accel, {gyro} gyro, {mag} mag samples — \
                 the three streams must be the same length"
            ),
            Self::BadSampleRate(fs) => {
                write!(f, "IMU sample rate must be positive and finite, got {fs}")
            }
            Self::Format(msg) => write!(f, "malformed IMU recording: {msg}"),
        }
    }
}

impl std::error::Error for ImuError {}

/// Magic prefix of the binary `.imu` sidecar format.
const IMU_MAGIC: &[u8; 8] = b"RIMIMU01";

/// A recorded IMU stream aligned with the trajectory samples.
#[derive(Debug, Clone)]
pub struct ImuRecording {
    /// Sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Body-frame specific acceleration, m/s² (x = device forward axis).
    pub accel_body: Vec<Vec2>,
    /// Angular rate about z, rad/s.
    pub gyro_z: Vec<f64>,
    /// Magnetometer heading output (device orientation estimate), radians.
    pub mag_orientation: Vec<f64>,
}

impl ImuRecording {
    /// Builds a recording after checking that the three sensor streams
    /// agree in length and the sample rate is usable. This is the
    /// constructor external data should come through; the public fields
    /// remain for in-process producers that sample all streams in
    /// lockstep.
    pub fn validated(
        sample_rate_hz: f64,
        accel_body: Vec<Vec2>,
        gyro_z: Vec<f64>,
        mag_orientation: Vec<f64>,
    ) -> Result<Self, ImuError> {
        if !(sample_rate_hz.is_finite() && sample_rate_hz > 0.0) {
            return Err(ImuError::BadSampleRate(sample_rate_hz));
        }
        if accel_body.len() != gyro_z.len() || gyro_z.len() != mag_orientation.len() {
            return Err(ImuError::Ragged {
                accel: accel_body.len(),
                gyro: gyro_z.len(),
                mag: mag_orientation.len(),
            });
        }
        Ok(Self {
            sample_rate_hz,
            accel_body,
            gyro_z,
            mag_orientation,
        })
    }

    /// Number of samples. For a ragged recording (streams of unequal
    /// length) this is the shortest stream — the count every consumer can
    /// actually index — rather than silently over-reporting from one
    /// stream; build through [`ImuRecording::validated`] to reject ragged
    /// input outright.
    pub fn len(&self) -> usize {
        self.accel_body
            .len()
            .min(self.gyro_z.len())
            .min(self.mag_orientation.len())
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialises to the little-endian binary `.imu` sidecar format:
    /// magic, sample rate, count, then per-sample `ax ay gyro mag` f64s.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.len();
        let mut out = Vec::with_capacity(8 + 8 + 8 + n * 32);
        out.extend_from_slice(IMU_MAGIC);
        out.extend_from_slice(&self.sample_rate_hz.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for i in 0..n {
            out.extend_from_slice(&self.accel_body[i].x.to_le_bytes());
            out.extend_from_slice(&self.accel_body[i].y.to_le_bytes());
            out.extend_from_slice(&self.gyro_z[i].to_le_bytes());
            out.extend_from_slice(&self.mag_orientation[i].to_le_bytes());
        }
        out
    }

    /// Decodes the binary sidecar format written by
    /// [`ImuRecording::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ImuError> {
        let mut r = ByteReader { bytes, at: 0 };
        let magic = r.take(8)?;
        if magic != IMU_MAGIC {
            return Err(ImuError::Format(format!(
                "bad magic {magic:?} (expected {IMU_MAGIC:?}) — not a .imu sidecar"
            )));
        }
        let sample_rate_hz = r.f64()?;
        let n = r.u64()? as usize;
        let need = n
            .checked_mul(32)
            .ok_or_else(|| ImuError::Format(format!("sample count {n} overflows")))?;
        if r.bytes.len() - r.at != need {
            return Err(ImuError::Format(format!(
                "expected {need} payload bytes for {n} samples, found {}",
                r.bytes.len() - r.at
            )));
        }
        let mut accel_body = Vec::with_capacity(n);
        let mut gyro_z = Vec::with_capacity(n);
        let mut mag_orientation = Vec::with_capacity(n);
        for _ in 0..n {
            let ax = r.f64()?;
            let ay = r.f64()?;
            accel_body.push(Vec2::new(ax, ay));
            gyro_z.push(r.f64()?);
            mag_orientation.push(r.f64()?);
        }
        Self::validated(sample_rate_hz, accel_body, gyro_z, mag_orientation)
    }
}

/// Minimal cursor over a byte slice for sidecar decoding.
struct ByteReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl ByteReader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ImuError> {
        if self.at + n > self.bytes.len() {
            return Err(ImuError::Format(format!(
                "truncated at byte {} (needed {n} more)",
                self.at
            )));
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn f64(&mut self) -> Result<f64, ImuError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ImuError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

/// Configuration of the simulated IMU.
#[derive(Debug, Clone)]
pub struct ImuConfig {
    /// Accelerometer error spec (applied per body axis).
    pub accel: AxisSpec,
    /// Gyroscope error spec (z axis).
    pub gyro: AxisSpec,
    /// Magnetometer error spec.
    pub mag: AxisSpec,
    /// Peak magnetometer distortion from the environment, radians.
    pub mag_distortion: f64,
    /// Spatial wavelength of the distortion field, metres.
    pub mag_distortion_scale: f64,
}

impl ImuConfig {
    /// Consumer-grade defaults (BNO055 class).
    pub fn consumer() -> Self {
        Self {
            accel: crate::spec::consumer_accelerometer(),
            gyro: crate::spec::consumer_gyroscope(),
            mag: crate::spec::consumer_magnetometer(),
            mag_distortion: 20.0f64.to_radians(),
            mag_distortion_scale: 6.0,
        }
    }

    /// An uncalibrated / vibration-stressed unit: the gyro carries a
    /// substantial turn-on bias that was never zeroed (0.5 °/s) and walks
    /// faster — the regime where the paper's Fig. 21 dead-reckoned track
    /// visibly bends away and the map-constrained particle filter earns
    /// its keep.
    pub fn uncalibrated() -> Self {
        let mut cfg = Self::consumer();
        cfg.gyro.bias = 0.5f64.to_radians();
        cfg.gyro.bias_walk = (60.0f64 / 3600.0).to_radians();
        cfg
    }

    /// Error-free sensors (for isolating algorithmic effects).
    pub fn ideal() -> Self {
        Self {
            accel: AxisSpec::ideal(),
            gyro: AxisSpec::ideal(),
            mag: AxisSpec::ideal(),
            mag_distortion: 0.0,
            mag_distortion_scale: 1.0,
        }
    }
}

/// Simulated IMU attached to a trajectory.
#[derive(Debug, Clone)]
pub struct SimulatedImu {
    config: ImuConfig,
    seed: u64,
}

impl SimulatedImu {
    /// Creates a simulated IMU.
    pub fn new(config: ImuConfig, seed: u64) -> Self {
        Self { config, seed }
    }

    /// Samples the trajectory into sensor streams.
    pub fn sample(&self, traj: &Trajectory) -> ImuRecording {
        let n = traj.len();
        let fs = traj.sample_rate_hz();
        let dt = 1.0 / fs;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // True body-frame acceleration via central second differences.
        // (Index-based loops keep the ±1 stencils legible.)
        let mut accel_true = vec![Vec2::ZERO; n];
        #[allow(clippy::needless_range_loop)]
        for i in 1..n.saturating_sub(1) {
            let p0 = traj.pose(i - 1).pos;
            let p1 = traj.pose(i).pos;
            let p2 = traj.pose(i + 1).pos;
            let a_world = Vec2::new(
                (p2.x - 2.0 * p1.x + p0.x) / (dt * dt),
                (p2.y - 2.0 * p1.y + p0.y) / (dt * dt),
            );
            accel_true[i] = a_world.rotate(-traj.pose(i).orientation);
        }

        // True angular rate via central differences of orientation.
        let mut gyro_true = vec![0.0; n];
        #[allow(clippy::needless_range_loop)]
        for i in 1..n.saturating_sub(1) {
            let d = rim_dsp::stats::wrap_angle(
                traj.pose(i + 1).orientation - traj.pose(i - 1).orientation,
            );
            gyro_true[i] = d / (2.0 * dt);
        }

        let mut accel_body = Vec::with_capacity(n);
        let mut gyro_z = Vec::with_capacity(n);
        let mut mag_orientation = Vec::with_capacity(n);

        let mut apply = AxisChannels::new(&self.config, fs, &mut rng);
        for i in 0..n {
            let pose = traj.pose(i);
            accel_body.push(Vec2::new(
                apply.accel_x.measure(accel_true[i].x, &mut rng),
                apply.accel_y.measure(accel_true[i].y, &mut rng),
            ));
            gyro_z.push(apply.gyro.measure(gyro_true[i], &mut rng));
            let distorted = pose.orientation + self.distortion_at(pose.pos);
            mag_orientation.push(rim_dsp::stats::wrap_angle(
                apply.mag.measure(distorted, &mut rng),
            ));
        }
        ImuRecording {
            sample_rate_hz: fs,
            accel_body,
            gyro_z,
            mag_orientation,
        }
    }

    /// The smooth, deterministic magnetometer distortion field at a
    /// position (radians).
    pub fn distortion_at(&self, p: Point2) -> f64 {
        let s = self.config.mag_distortion_scale.max(1e-6);
        let k = std::f64::consts::TAU / s;
        self.config.mag_distortion
            * (0.6 * (k * p.x + 1.3).sin() + 0.4 * (k * 0.7 * p.y - 0.5).cos())
    }
}

/// Per-axis stateful error channels.
struct AxisChannels {
    accel_x: ErrorChannel,
    accel_y: ErrorChannel,
    gyro: ErrorChannel,
    mag: ErrorChannel,
}

impl AxisChannels {
    fn new(config: &ImuConfig, fs: f64, rng: &mut StdRng) -> Self {
        Self {
            accel_x: ErrorChannel::new(config.accel, fs, rng),
            accel_y: ErrorChannel::new(config.accel, fs, rng),
            gyro: ErrorChannel::new(config.gyro, fs, rng),
            mag: ErrorChannel::new(config.mag, fs, rng),
        }
    }
}

/// One axis' error state: fixed turn-on bias plus a slowly walking bias
/// plus white noise and scale error.
struct ErrorChannel {
    spec: AxisSpec,
    turn_on_bias: f64,
    walking_bias: f64,
    noise_sigma: f64,
    walk_sigma: f64,
}

impl ErrorChannel {
    fn new(spec: AxisSpec, fs: f64, rng: &mut StdRng) -> Self {
        // Turn-on bias: random sign/magnitude up to the spec value.
        let turn_on_bias = if spec.bias > 0.0 {
            rng.gen_range(-spec.bias..spec.bias)
        } else {
            0.0
        };
        Self {
            spec,
            turn_on_bias,
            walking_bias: 0.0,
            noise_sigma: spec.noise_density * fs.sqrt(),
            walk_sigma: spec.bias_walk / fs.sqrt(),
        }
    }

    fn measure(&mut self, truth: f64, rng: &mut StdRng) -> f64 {
        if self.walk_sigma > 0.0 {
            self.walking_bias += self.walk_sigma * normal(rng);
        }
        let noise = if self.noise_sigma > 0.0 {
            self.noise_sigma * normal(rng)
        } else {
            0.0
        };
        truth * (1.0 + self.spec.scale_error) + self.turn_on_bias + self.walking_bias + noise
    }
}

fn normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_channel::trajectory::{dwell, line, rotate_in_place, OrientationMode};

    #[test]
    fn ideal_imu_reads_truth() {
        let traj = line(
            Point2::ORIGIN,
            0.0,
            1.0,
            1.0,
            100.0,
            OrientationMode::FollowPath,
        );
        let imu = SimulatedImu::new(ImuConfig::ideal(), 1);
        let rec = imu.sample(&traj);
        assert_eq!(rec.len(), traj.len());
        // Constant velocity: zero acceleration (except numerical edges).
        for a in &rec.accel_body[2..rec.len() - 2] {
            assert!(a.norm() < 1e-6, "constant speed → zero accel, got {a:?}");
        }
        assert!(rec.gyro_z.iter().all(|&g| g.abs() < 1e-9));
        for (&m, p) in rec.mag_orientation.iter().zip(traj.poses()) {
            assert!((m - p.orientation).abs() < 1e-9);
        }
    }

    #[test]
    fn ideal_gyro_reads_rotation_rate() {
        let traj = rotate_in_place(Point2::ORIGIN, 0.0, std::f64::consts::PI, 1.0, 100.0);
        let imu = SimulatedImu::new(ImuConfig::ideal(), 1);
        let rec = imu.sample(&traj);
        for &g in &rec.gyro_z[2..rec.len() - 2] {
            // rotate_in_place rounds the sample count, so the realised rate
            // differs from 1 rad/s by up to the rounding of one sample.
            assert!((g - 1.0).abs() < 5e-3, "1 rad/s rotation, got {g}");
        }
    }

    #[test]
    fn uncalibrated_gyro_drifts_visibly() {
        // The turn-on bias is drawn uniformly in ±0.5 °/s, so any single
        // seed may draw near zero; over several power-ups the *typical*
        // 30 s drift must reach several degrees.
        let traj = dwell(Point2::ORIGIN, 0.0, 30.0, 100.0);
        let mut drifts: Vec<f64> = (0..8)
            .map(|seed| {
                let rec = SimulatedImu::new(ImuConfig::uncalibrated(), seed).sample(&traj);
                (rec.gyro_z.iter().sum::<f64>() / 100.0).abs().to_degrees()
            })
            .collect();
        drifts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = drifts[drifts.len() / 2];
        assert!(median > 3.0, "median 30 s drift {median:.1}°");
    }

    #[test]
    fn consumer_imu_is_noisy_but_bounded() {
        let traj = dwell(Point2::ORIGIN, 0.0, 2.0, 100.0);
        let imu = SimulatedImu::new(ImuConfig::consumer(), 3);
        let rec = imu.sample(&traj);
        // Static device: accel readings are pure error, nonzero but small.
        let mean_mag: f64 = rec.accel_body.iter().map(|a| a.norm()).sum::<f64>() / rec.len() as f64;
        assert!(mean_mag > 1e-4, "errors present");
        assert!(mean_mag < 1.0, "but bounded: {mean_mag}");
    }

    #[test]
    fn deterministic_per_seed() {
        let traj = dwell(Point2::ORIGIN, 0.0, 0.5, 100.0);
        let a = SimulatedImu::new(ImuConfig::consumer(), 9).sample(&traj);
        let b = SimulatedImu::new(ImuConfig::consumer(), 9).sample(&traj);
        assert_eq!(a.gyro_z, b.gyro_z);
        let c = SimulatedImu::new(ImuConfig::consumer(), 10).sample(&traj);
        assert_ne!(a.gyro_z, c.gyro_z);
    }

    #[test]
    fn magnetometer_distortion_varies_spatially() {
        let imu = SimulatedImu::new(ImuConfig::consumer(), 1);
        let d1 = imu.distortion_at(Point2::new(0.0, 0.0));
        let d2 = imu.distortion_at(Point2::new(3.0, 2.0));
        assert!((d1 - d2).abs() > 1e-3, "field varies over metres");
        // Bounded by the configured peak.
        for k in 0..100 {
            let p = Point2::new(k as f64 * 0.37, (k % 7) as f64);
            assert!(imu.distortion_at(p).abs() <= 20.0f64.to_radians() + 1e-9);
        }
    }

    #[test]
    fn validated_rejects_ragged_and_len_never_overreports() {
        let ragged = ImuRecording {
            sample_rate_hz: 100.0,
            accel_body: vec![Vec2::ZERO; 5],
            gyro_z: vec![0.0; 7],
            mag_orientation: vec![0.0; 5],
        };
        // len() reports the shortest stream, never the gyro length alone.
        assert_eq!(ragged.len(), 5);
        let err = ImuRecording::validated(
            100.0,
            ragged.accel_body.clone(),
            ragged.gyro_z.clone(),
            ragged.mag_orientation.clone(),
        )
        .expect_err("ragged streams rejected");
        assert_eq!(
            err,
            ImuError::Ragged {
                accel: 5,
                gyro: 7,
                mag: 5
            }
        );
        assert!(err.to_string().contains("ragged"), "{err}");
        assert!(matches!(
            ImuRecording::validated(0.0, vec![], vec![], vec![]),
            Err(ImuError::BadSampleRate(_))
        ));
        assert!(ImuRecording::validated(100.0, vec![], vec![], vec![]).is_ok());
    }

    #[test]
    fn sidecar_round_trip_is_lossless() {
        let traj = line(
            Point2::ORIGIN,
            0.3,
            1.0,
            1.0,
            100.0,
            OrientationMode::FollowPath,
        );
        let rec = SimulatedImu::new(ImuConfig::consumer(), 11).sample(&traj);
        let bytes = rec.to_bytes();
        let back = ImuRecording::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.sample_rate_hz, rec.sample_rate_hz);
        assert_eq!(back.gyro_z, rec.gyro_z);
        assert_eq!(back.mag_orientation, rec.mag_orientation);
        assert_eq!(back.accel_body.len(), rec.accel_body.len());
        for (a, b) in back.accel_body.iter().zip(&rec.accel_body) {
            assert_eq!((a.x, a.y), (b.x, b.y));
        }
        // Corruption surfaces as a typed format error, not a panic.
        assert!(matches!(
            ImuRecording::from_bytes(&bytes[..bytes.len() - 3]),
            Err(ImuError::Format(_))
        ));
        assert!(matches!(
            ImuRecording::from_bytes(b"not an imu file"),
            Err(ImuError::Format(_))
        ));
    }

    #[test]
    fn accel_sees_ramp_acceleration() {
        // A ramped line accelerates at 2 m/s² initially; the ideal
        // accelerometer must read it on the body x axis.
        let traj = rim_channel::trajectory::line_ramped(
            Point2::ORIGIN,
            0.0,
            2.0,
            1.0,
            2.0,
            100.0,
            OrientationMode::FollowPath,
        );
        let imu = SimulatedImu::new(ImuConfig::ideal(), 1);
        let rec = imu.sample(&traj);
        let early = &rec.accel_body[3..20];
        let mean_ax = early.iter().map(|a| a.x).sum::<f64>() / early.len() as f64;
        assert!((mean_ax - 2.0).abs() < 0.3, "ramp accel visible: {mean_ax}");
    }
}
