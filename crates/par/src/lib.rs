//! # rim-par
//!
//! A dependency-free, `std::thread`-based work-stealing chunk scheduler
//! for the RIM hot paths (following the `shims/` precedent of vendoring
//! minimal in-repo substitutes: this crate plays the role rayon would,
//! sized to exactly what the pipeline needs).
//!
//! ## Model
//!
//! Work is a range of `n` items (time columns, lag rows, pair matrices,
//! sessions) cut into contiguous *tiles*. Each worker starts with an even
//! contiguous share of the tiles; a worker that drains its share steals
//! the back half of the richest remaining share (classic range splitting,
//! one CAS per steal). Parallel regions run under [`std::thread::scope`],
//! so tile closures borrow the caller's stack directly — no `'static`
//! bounds, no channels, no arcs.
//!
//! ## Determinism
//!
//! Results are keyed by tile index and recombined in tile order on the
//! calling thread, so the output of [`Pool::run_tiles`] is a pure
//! function of the tile closure — scheduling, thread count, and steal
//! order never influence it. As long as the per-tile computation matches
//! the serial loop (every RIM use tiles loops whose iterations are
//! independent), parallel results are **bit-identical** to serial ones.
//!
//! ## Observability
//!
//! The pool accumulates per-worker tile/steal/busy-time statistics
//! ([`PoolStats`]); callers drain them ([`Pool::drain_stats`]) into
//! whatever reporting they use (rim-core feeds them to the `rim-obs`
//! probe under the `parallel_pool` stage). This crate stays
//! dependency-free, so it only exposes the numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Hard cap on worker threads (a guard against typo'd configs; far above
/// any real machine this targets).
pub const MAX_THREADS: usize = 256;

/// Cumulative scheduler statistics, merged across runs until drained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Parallel regions executed (serial fast-path runs included).
    pub runs: u64,
    /// Regions that actually fanned out to more than one worker.
    pub parallel_runs: u64,
    /// Tiles executed in total.
    pub tiles: u64,
    /// Successful steals (a worker refilled from a victim's share).
    pub steals: u64,
    /// Steal attempts, successful or not.
    pub steal_attempts: u64,
    /// Per-worker busy time (nanoseconds inside tile closures), indexed
    /// by worker slot. Slot 0 is the calling thread.
    pub busy_ns: Vec<u64>,
}

impl PoolStats {
    /// Total busy nanoseconds across workers.
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().sum()
    }

    fn merge_run(&mut self, run: &RunStats) {
        self.runs += 1;
        if run.workers > 1 {
            self.parallel_runs += 1;
        }
        if self.busy_ns.len() < run.per_worker.len() {
            self.busy_ns.resize(run.per_worker.len(), 0);
        }
        for (slot, w) in run.per_worker.iter().enumerate() {
            self.tiles += w.tiles;
            self.steals += w.steals;
            self.steal_attempts += w.steal_attempts;
            self.busy_ns[slot] += w.busy_ns;
        }
    }
}

/// Per-worker counters for one run.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerStats {
    tiles: u64,
    steals: u64,
    steal_attempts: u64,
    busy_ns: u64,
}

/// Aggregate of one parallel region.
#[derive(Debug, Default)]
struct RunStats {
    workers: usize,
    per_worker: Vec<WorkerStats>,
}

/// A worker's pending share of tile indices, packed `lo:hi` into one
/// atomic so owner pops (front) and thief takes (back) coordinate with a
/// single CAS.
struct TileQueue {
    range: AtomicU64,
}

fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl TileQueue {
    fn new(lo: u32, hi: u32) -> Self {
        Self {
            range: AtomicU64::new(pack(lo, hi)),
        }
    }

    /// Owner takes the next tile from the front.
    fn pop_front(&self) -> Option<u32> {
        let mut cur = self.range.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            match self.range.compare_exchange_weak(
                cur,
                pack(lo + 1, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo),
                Err(seen) => cur = seen,
            }
        }
    }

    /// A thief takes the back half (rounded up) of the remaining share.
    fn steal_back_half(&self) -> Option<Range<u32>> {
        let mut cur = self.range.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let take = (hi - lo).div_ceil(2);
            let new_hi = hi - take;
            match self.range.compare_exchange_weak(
                cur,
                pack(lo, new_hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(new_hi..hi),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Pending tiles (a racy snapshot, used only to pick a victim).
    fn remaining(&self) -> u32 {
        let (lo, hi) = unpack(self.range.load(Ordering::Relaxed));
        hi.saturating_sub(lo)
    }

    /// Owner refills its own (empty) share with stolen tiles. Only the
    /// owner stores, and only while the share is empty, so thieves — who
    /// skip empty shares — cannot race the store.
    fn refill(&self, r: Range<u32>) {
        self.range.store(pack(r.start, r.end), Ordering::Release);
    }
}

/// The scheduler: a worker count, a tile-size hint, and accumulated
/// statistics. Cheap to construct; threads are scoped per region, so an
/// idle pool holds no OS resources.
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    tile_hint: usize,
    stats: Mutex<PoolStats>,
}

impl Default for Pool {
    fn default() -> Self {
        Self::new(0, 0)
    }
}

impl Pool {
    /// Creates a pool. `threads == 0` resolves automatically (the
    /// `RIM_THREADS` environment variable if set, else the machine's
    /// available parallelism); `tile_hint == 0` sizes tiles per run.
    pub fn new(threads: usize, tile_hint: usize) -> Self {
        Self {
            threads: Self::resolve_threads(threads),
            tile_hint,
            stats: Mutex::new(PoolStats::default()),
        }
    }

    /// A single-threaded pool (the serial fast path, zero scheduling).
    pub fn serial() -> Self {
        Self::new(1, 0)
    }

    /// Resolves a requested worker count: explicit values win, then the
    /// `RIM_THREADS` environment variable, then available parallelism.
    pub fn resolve_threads(requested: usize) -> usize {
        let n = if requested > 0 {
            requested
        } else if let Some(n) = std::env::var("RIM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            n
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        n.clamp(1, MAX_THREADS)
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Tile size for a run over `n` items: the hint when set, otherwise
    /// eight tiles per worker (enough slack for stealing to rebalance
    /// without shredding cache locality).
    pub fn tile_for(&self, n: usize) -> usize {
        if self.tile_hint > 0 {
            self.tile_hint
        } else {
            n.div_ceil(self.threads * 8).max(1)
        }
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Takes and resets the accumulated statistics.
    pub fn drain_stats(&self) -> PoolStats {
        std::mem::take(&mut *self.stats.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Runs `f` over `0..n` cut into tiles (see [`Pool::tile_for`]),
    /// returning the per-tile results **in tile order**. `f` receives
    /// `(tile_index, item_range)`.
    pub fn run_tiles<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        self.run_tiles_sized(n, self.tile_for(n), f)
    }

    /// [`Pool::run_tiles`] with an explicit tile size.
    pub fn run_tiles_sized<R, F>(&self, n: usize, tile: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let tile = tile.max(1);
        let n_tiles = n.div_ceil(tile);
        let workers = self.threads.min(n_tiles);
        let mut run = RunStats {
            workers,
            per_worker: vec![WorkerStats::default(); workers],
        };
        let out = if workers <= 1 {
            let t0 = Instant::now();
            let out: Vec<R> = (0..n_tiles)
                .map(|t| f(t, t * tile..((t + 1) * tile).min(n)))
                .collect();
            let w = &mut run.per_worker[0];
            w.tiles = n_tiles as u64;
            w.busy_ns = t0.elapsed().as_nanos() as u64;
            out
        } else {
            self.run_stealing(n, tile, n_tiles, workers, &f, &mut run)
        };
        self.stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge_run(&run);
        out
    }

    /// Maps `f` over a slice on the pool, preserving order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        // Tile size 1: items like whole analysis sessions are coarse
        // enough that per-item scheduling is the right granularity.
        let tiles = self.run_tiles_sized(items.len(), 1, |_, range| {
            range.map(|i| f(&items[i])).collect::<Vec<R>>()
        });
        tiles.into_iter().flatten().collect()
    }

    /// Maps `f` over a slice of mutable items on the pool, preserving
    /// order. Each item is visited by exactly one worker (tile size 1),
    /// which is what a multi-session scheduler needs: independent
    /// per-session states advanced concurrently, each mutated by a
    /// single thread. The per-item `Mutex` is uncontended by
    /// construction (the work-stealing queues hand every tile to one
    /// worker), so this stays `forbid(unsafe_code)`-clean without a
    /// measurable cost next to the work each item carries.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        let cells: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
        let tiles = self.run_tiles_sized(cells.len(), 1, |_, range| {
            range
                .map(|i| {
                    let mut item = cells[i].lock().unwrap_or_else(|e| e.into_inner());
                    f(&mut item)
                })
                .collect::<Vec<R>>()
        });
        tiles.into_iter().flatten().collect()
    }

    fn run_stealing<R, F>(
        &self,
        n: usize,
        tile: usize,
        n_tiles: usize,
        workers: usize,
        f: &F,
        run: &mut RunStats,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        // Even contiguous initial shares.
        let queues: Vec<TileQueue> = (0..workers)
            .map(|w| {
                let lo = (w * n_tiles / workers) as u32;
                let hi = ((w + 1) * n_tiles / workers) as u32;
                TileQueue::new(lo, hi)
            })
            .collect();
        let queues = &queues;
        let mut parts: Vec<(Vec<(u32, R)>, WorkerStats)> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = (1..workers)
                .map(|w| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        let mut stats = WorkerStats::default();
                        worker_loop(w, queues, n, tile, f, &mut out, &mut stats);
                        (out, stats)
                    })
                })
                .collect();
            let mut out0 = Vec::new();
            let mut stats0 = WorkerStats::default();
            worker_loop(0, queues, n, tile, f, &mut out0, &mut stats0);
            parts.push((out0, stats0));
            for h in handles {
                // A panic inside a tile closure propagates to the caller.
                parts.push(h.join().expect("pool worker panicked"));
            }
        });
        // Deterministic recombination: place results by tile index.
        let mut slots: Vec<Option<R>> = (0..n_tiles).map(|_| None).collect();
        for (w, (part, stats)) in parts.into_iter().enumerate() {
            run.per_worker[w] = stats;
            for (t, r) in part {
                slots[t as usize] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every tile ran exactly once"))
            .collect()
    }
}

/// One worker: drain the own share, then steal from the richest victim
/// until every share is empty.
fn worker_loop<R, F>(
    me: usize,
    queues: &[TileQueue],
    n: usize,
    tile: usize,
    f: &F,
    out: &mut Vec<(u32, R)>,
    stats: &mut WorkerStats,
) where
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    loop {
        while let Some(t) = queues[me].pop_front() {
            let start = t as usize * tile;
            let end = (start + tile).min(n);
            let t0 = Instant::now();
            let r = f(t as usize, start..end);
            stats.busy_ns += t0.elapsed().as_nanos() as u64;
            stats.tiles += 1;
            out.push((t, r));
        }
        // Pick the victim with the most pending tiles.
        let victim = queues
            .iter()
            .enumerate()
            .filter(|&(w, _)| w != me)
            .map(|(w, q)| (q.remaining(), w))
            .max()
            .filter(|&(rem, _)| rem > 0);
        let Some((_, victim)) = victim else {
            // Every other share looked empty; remaining tiles are already
            // executing on their owners. Done.
            break;
        };
        stats.steal_attempts += 1;
        if let Some(r) = queues[victim].steal_back_half() {
            stats.steals += 1;
            queues[me].refill(r);
        }
        // A failed steal (lost the race) re-enters the sweep.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_cover_range_in_order() {
        let pool = Pool::new(4, 3);
        let tiles = pool.run_tiles(10, |idx, range| (idx, range));
        assert_eq!(
            tiles,
            vec![(0, 0..3), (1, 3..6), (2, 6..9), (3, 9..10)],
            "tile order and coverage"
        );
    }

    #[test]
    fn parallel_matches_serial_results() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = Pool::serial().map(&items, |&x| x * x + 1);
        for threads in [2, 4, 8] {
            let par = Pool::new(threads, 0).map(&items, |&x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = Pool::new(8, 0);
        assert!(pool.run_tiles(0, |_, _| 0).is_empty());
        assert_eq!(pool.run_tiles(1, |_, r| r.len()), vec![1]);
        assert_eq!(pool.map(&[3u8], |&x| x + 1), vec![4]);
    }

    #[test]
    fn stats_accumulate_and_drain() {
        let pool = Pool::new(2, 1);
        let _ = pool.run_tiles(8, |_, _| ());
        let stats = pool.stats();
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.tiles, 8);
        assert!(stats.busy_ns.len() <= 2 && !stats.busy_ns.is_empty());
        let drained = pool.drain_stats();
        assert_eq!(drained.tiles, 8);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn serial_pool_never_spawns() {
        let pool = Pool::serial();
        let out = pool.run_tiles(100, |_, range| range.sum::<usize>());
        assert_eq!(out.iter().sum::<usize>(), (0..100).sum());
        let stats = pool.stats();
        assert_eq!(stats.parallel_runs, 0);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn stealing_rebalances_skewed_work() {
        // Worker 0's initial share carries all the heavy tiles; with
        // per-tile stealing the others must take some of them.
        let pool = Pool::new(4, 1);
        let out = pool.run_tiles(64, |idx, _| {
            if idx < 16 {
                // Heavy: spin a little.
                let mut acc = 0u64;
                for i in 0..200_000 {
                    acc = acc.wrapping_mul(31).wrapping_add(i);
                }
                acc as usize % 2 + idx
            } else {
                idx
            }
        });
        assert_eq!(out.len(), 64);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i || v == i + 1));
    }

    #[test]
    fn map_mut_mutates_in_place_and_preserves_order() {
        let mut serial_items: Vec<u64> = (0..257).collect();
        let serial = Pool::serial().map_mut(&mut serial_items, |x| {
            *x += 1;
            *x * 2
        });
        for threads in [2, 4, 8] {
            let mut items: Vec<u64> = (0..257).collect();
            let out = Pool::new(threads, 0).map_mut(&mut items, |x| {
                *x += 1;
                *x * 2
            });
            assert_eq!(out, serial, "threads={threads}");
            assert_eq!(items, serial_items, "threads={threads}");
        }
        assert!(Pool::new(4, 0)
            .map_mut(&mut Vec::<u64>::new(), |_| 0)
            .is_empty());
    }

    #[test]
    fn explicit_threads_win_over_env() {
        assert_eq!(Pool::resolve_threads(3), 3);
        assert_eq!(Pool::resolve_threads(MAX_THREADS + 9), MAX_THREADS);
        assert!(Pool::resolve_threads(0) >= 1);
    }

    #[test]
    fn queue_pop_and_steal_are_disjoint() {
        let q = TileQueue::new(0, 10);
        assert_eq!(q.pop_front(), Some(0));
        let stolen = q.steal_back_half().unwrap();
        assert_eq!(stolen, 5..10, "half of the 9 remaining, rounded up");
        assert_eq!(q.remaining(), 4);
        let mut seen = Vec::new();
        while let Some(t) = q.pop_front() {
            seen.push(t);
        }
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(q.steal_back_half(), None);
    }
}
