//! `rim` — command-line interface to the RIM reproduction.
//!
//! ```text
//! rim simulate out.rimc [--scenario line|square|rotation] [--env lab|office]
//!              [--array linear3|hexagonal|l] [--distance M] [--speed M/S]
//!              [--rate HZ] [--loss P] [--seed N]
//! rim analyze  in.rimc [in2.rimc…] [--array linear3|hexagonal|l]
//!              [--min-speed M/S] [--start X,Y] [--threads N] [--verbose]
//! rim serve    in.rimc [--sessions K] [--loss SPEC] | --listen ADDR
//! rim top      ADDR [--interval-ms MS] [--iterations N]
//! rim floorplan
//! rim demo     [--seed N]
//! ```
//!
//! `simulate` writes a capture file (simulated CSI of a scenario);
//! `analyze` runs the RIM pipeline on any capture file — including ones
//! produced elsewhere, as long as they follow the format in
//! `rim_csi::storage`.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = args::parse(std::env::args().skip(1));
    let result = match parsed.command.as_deref() {
        Some("simulate") => commands::simulate(&parsed),
        Some("analyze") => commands::analyze(&parsed),
        Some("serve") => commands::serve(&parsed),
        Some("top") => commands::top(&parsed),
        Some("floorplan") => commands::floorplan(&parsed),
        Some("demo") => commands::demo(&parsed),
        Some("help") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("rim: {msg}");
            ExitCode::FAILURE
        }
    }
}
