//! Minimal argument parsing (no external dependencies): positional
//! subcommand plus `--key value` / `--flag` options.

use std::collections::BTreeMap;

/// Parsed command line: subcommand, positional args, options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional), if any.
    pub command: Option<String>,
    /// Remaining positionals.
    pub positional: Vec<String>,
    /// `--key value` options and bare `--flag`s (value "true").
    pub options: BTreeMap<String, String>,
}

/// Parses an iterator of arguments (without the program name).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
    let mut out = Args::default();
    let mut it = args.into_iter().peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap(),
                _ => String::from("true"),
            };
            out.options.insert(key.to_string(), value);
        } else if out.command.is_none() {
            out.command = Some(a);
        } else {
            out.positional.push(a);
        }
    }
    out
}

impl Args {
    /// Option as `f64`, with default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }

    /// Option as `u64`, with default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got {v:?}")),
        }
    }

    /// Option as string, with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// True when a bare flag is present.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = args(&["simulate", "--distance", "2.5", "--seed", "7", "out.rimc"]);
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.positional, vec!["out.rimc"]);
        assert_eq!(a.get_f64("distance", 0.0).unwrap(), 2.5);
        assert_eq!(a.get_u64("seed", 0).unwrap(), 7);
    }

    #[test]
    fn bare_flags_and_defaults() {
        let a = args(&["analyze", "--verbose"]);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get_f64("rate", 200.0).unwrap(), 200.0);
        assert_eq!(a.get_str("array", "linear3"), "linear3");
    }

    #[test]
    fn bad_numbers_error() {
        let a = args(&["x", "--n", "abc"]);
        assert!(a.get_f64("n", 0.0).is_err());
        assert!(a.get_u64("n", 0).is_err());
    }

    #[test]
    fn empty_input() {
        let a = args(&[]);
        assert!(a.command.is_none());
        assert!(a.positional.is_empty());
    }
}
