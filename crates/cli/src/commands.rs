//! The `rim` subcommands.

use crate::args::Args;
use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_channel::trajectory::{line, polyline, rotate_in_place, OrientationMode, Trajectory};
use rim_channel::ChannelSimulator;
use rim_core::{Rim, RimConfig};
use rim_csi::{CsiRecorder, DeviceConfig, LossModel, RecorderConfig};
use rim_dsp::geom::Point2;
use std::fs::File;
use std::io::{BufReader, BufWriter};

/// Usage text.
pub const USAGE: &str = "\
rim — RF-based inertial measurement (RIM, SIGCOMM 2019) in Rust

USAGE:
  rim simulate <out.rimc> [--scenario line|square|rotation] [--env lab|office]
               [--array linear3|hexagonal|l] [--distance M] [--speed M/S]
               [--rate HZ] [--loss P] [--seed N]
  rim analyze  <in.rimc>  [--array linear3|hexagonal|l] [--min-speed M/S]
               [--start X,Y] [--verbose]
  rim floorplan
  rim demo     [--seed N]
  rim help
";

/// Resolves an array geometry by name.
fn array_by_name(name: &str) -> Result<ArrayGeometry, String> {
    match name {
        "linear3" => Ok(ArrayGeometry::linear(3, HALF_WAVELENGTH)),
        "hexagonal" => Ok(ArrayGeometry::hexagonal(HALF_WAVELENGTH)),
        "l" => Ok(ArrayGeometry::l_shape(HALF_WAVELENGTH)),
        other => Err(format!(
            "unknown array {other:?} (expected linear3 | hexagonal | l)"
        )),
    }
}

/// Resolves a simulation environment by name.
fn env_by_name(name: &str, seed: u64) -> Result<ChannelSimulator, String> {
    match name {
        "lab" => Ok(ChannelSimulator::open_lab(seed)),
        "office" => Ok(ChannelSimulator::office(0, seed)),
        other => Err(format!("unknown env {other:?} (expected lab | office)")),
    }
}

/// Builds the scenario trajectory.
fn scenario(
    name: &str,
    env: &str,
    distance: f64,
    speed: f64,
    rate: f64,
) -> Result<Trajectory, String> {
    let start = if env == "office" {
        Point2::new(8.0, 13.0)
    } else {
        Point2::new(0.0, 2.0)
    };
    match name {
        "line" => Ok(line(
            start,
            0.0,
            distance,
            speed,
            rate,
            OrientationMode::Fixed(0.0),
        )),
        "square" => {
            let side = (distance / 4.0).max(0.3);
            let wps = [
                start,
                Point2::new(start.x + side, start.y),
                Point2::new(start.x + side, start.y + side),
                Point2::new(start.x, start.y + side),
                start,
            ];
            Ok(polyline(&wps, speed, rate, OrientationMode::Fixed(0.0)))
        }
        "rotation" => Ok(rotate_in_place(
            start,
            0.0,
            std::f64::consts::PI,
            std::f64::consts::PI,
            rate,
        )),
        other => Err(format!(
            "unknown scenario {other:?} (expected line | square | rotation)"
        )),
    }
}

/// `rim simulate`.
pub fn simulate(args: &Args) -> Result<(), String> {
    let out_path = args
        .positional
        .first()
        .ok_or("simulate needs an output path (e.g. out.rimc)")?;
    let seed = args.get_u64("seed", 7)?;
    let rate = args.get_f64("rate", 200.0)?;
    let speed = args.get_f64("speed", 1.0)?;
    let distance = args.get_f64("distance", 2.0)?;
    let loss = args.get_f64("loss", 0.0)?;
    let env_name = args.get_str("env", "lab");
    let array_name = args.get_str("array", "linear3");
    let scenario_name = args.get_str("scenario", "line");

    let sim = env_by_name(&env_name, seed)?;
    let geometry = array_by_name(&array_name)?;
    let traj = scenario(&scenario_name, &env_name, distance, speed, rate)?;

    let mut device = if geometry.nic_groups().len() == 2 {
        DeviceConfig::dual_nic(geometry.offsets().to_vec())
    } else {
        DeviceConfig::single_nic(geometry.offsets().to_vec())
    };
    if loss > 0.0 {
        if !(0.0..1.0).contains(&loss) {
            return Err(format!("--loss must be in [0, 1), got {loss}"));
        }
        device = device.with_loss(LossModel::Iid { p: loss });
    }
    let recording = CsiRecorder::new(
        &sim,
        device,
        RecorderConfig {
            sanitize: true,
            seed,
        },
    )
    .record(&traj);

    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    rim_csi::storage::save_recording(&recording, BufWriter::new(file))
        .map_err(|e| format!("write failed: {e}"))?;
    println!(
        "wrote {out_path}: {} samples × {} antennas at {rate} Hz \
         ({scenario_name} in {env_name}, {:.2} m ground truth, loss {:.0}%)",
        recording.n_samples(),
        recording.n_antennas(),
        traj.total_distance(),
        recording.loss_rate() * 100.0,
    );
    Ok(())
}

/// `rim analyze`.
pub fn analyze(args: &Args) -> Result<(), String> {
    let in_path = args
        .positional
        .first()
        .ok_or("analyze needs an input path (a .rimc capture)")?;
    let array_name = args.get_str("array", "linear3");
    let min_speed = args.get_f64("min-speed", 0.3)?;
    let geometry = array_by_name(&array_name)?;

    let file = File::open(in_path).map_err(|e| format!("cannot open {in_path}: {e}"))?;
    let recording = rim_csi::storage::load_recording(BufReader::new(file))
        .map_err(|e| format!("load failed: {e}"))?;
    if recording.n_antennas() != geometry.n_antennas() {
        return Err(format!(
            "capture has {} antennas but array {array_name:?} has {} — pass --array",
            recording.n_antennas(),
            geometry.n_antennas()
        ));
    }
    let dense = recording
        .interpolated()
        .ok_or("capture is not interpolable (an antenna lost every packet)")?;
    let fs = dense.sample_rate_hz;
    let config = RimConfig::for_sample_rate(fs).with_min_speed(min_speed, HALF_WAVELENGTH, fs);
    let estimate = Rim::new(geometry, config).analyze(&dense);

    println!(
        "{in_path}: {} samples at {fs} Hz, loss {:.1}%",
        dense.n_samples(),
        recording.loss_rate() * 100.0
    );
    println!("total distance : {:.3} m", estimate.total_distance());
    if estimate.total_rotation().abs() > 1e-9 {
        println!(
            "net rotation   : {:.1}°",
            estimate.total_rotation().to_degrees()
        );
    }
    for seg in &estimate.segments {
        println!(
            "segment [{:.2}s..{:.2}s] {:?}: {:.3} m{}{}",
            seg.start as f64 / fs,
            seg.end as f64 / fs,
            seg.kind,
            seg.distance_m,
            seg.heading_device
                .map(|h| format!(", heading {:.0}°", h.to_degrees()))
                .unwrap_or_default(),
            if seg.rotation_rad.abs() > 1e-9 {
                format!(", rotation {:.1}°", seg.rotation_rad.to_degrees())
            } else {
                String::new()
            },
        );
    }
    if args.flag("verbose") {
        let start_opt = args.get_str("start", "0,0");
        let mut it = start_opt.split(',');
        let (sx, sy) = (
            it.next().and_then(|v| v.parse().ok()).unwrap_or(0.0),
            it.next().and_then(|v| v.parse().ok()).unwrap_or(0.0),
        );
        let track = estimate.trajectory(Point2::new(sx, sy), 0.0);
        println!("trajectory (every 0.5 s):");
        let step = (fs / 2.0) as usize;
        for (i, p) in track.iter().enumerate().step_by(step.max(1)) {
            println!("  t={:6.2}s  ({:7.3}, {:7.3})", i as f64 / fs, p.x, p.y);
        }
    }
    Ok(())
}

/// `rim floorplan`.
pub fn floorplan(_args: &Args) -> Result<(), String> {
    let (fp, aps) = rim_channel::office_floorplan();
    let (lo, hi) = fp.bounds().expect("walls");
    println!(
        "office testbed: {:.1} m × {:.1} m, {} walls, {} AP locations",
        hi.x - lo.x,
        hi.y - lo.y,
        fp.len(),
        aps.len()
    );
    for (k, ap) in aps.iter().enumerate() {
        println!("  AP #{k}: ({:.1}, {:.1})", ap.x, ap.y);
    }
    Ok(())
}

/// `rim demo` — a self-contained end-to-end run.
pub fn demo(args: &Args) -> Result<(), String> {
    let seed = args.get_u64("seed", 7)?;
    let sim = ChannelSimulator::open_lab(seed);
    let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        1.0,
        1.0,
        200.0,
        OrientationMode::FollowPath,
    );
    let dense = CsiRecorder::new(
        &sim,
        DeviceConfig::single_nic(geometry.offsets().to_vec()),
        RecorderConfig {
            sanitize: true,
            seed,
        },
    )
    .record(&traj)
    .interpolated()
    .ok_or("recording not interpolable")?;
    let config = RimConfig::for_sample_rate(200.0).with_min_speed(0.3, HALF_WAVELENGTH, 200.0);
    let est = Rim::new(geometry, config).analyze(&dense);
    println!(
        "demo: pushed the array 1.000 m; RIM measured {:.3} m ({:+.1} cm)",
        est.total_distance(),
        (est.total_distance() - 1.0) * 100.0
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn args(list: &[&str]) -> Args {
        parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn array_names_resolve() {
        assert_eq!(array_by_name("linear3").unwrap().n_antennas(), 3);
        assert_eq!(array_by_name("hexagonal").unwrap().n_antennas(), 6);
        assert_eq!(array_by_name("l").unwrap().n_antennas(), 3);
        assert!(array_by_name("bogus").is_err());
    }

    #[test]
    fn scenario_names_resolve() {
        assert!(scenario("line", "lab", 1.0, 1.0, 100.0).is_ok());
        assert!(scenario("square", "lab", 2.0, 1.0, 100.0).is_ok());
        assert!(scenario("rotation", "lab", 0.0, 1.0, 100.0).is_ok());
        assert!(scenario("bogus", "lab", 1.0, 1.0, 100.0).is_err());
    }

    #[test]
    fn simulate_then_analyze_round_trip() {
        let dir = std::env::temp_dir().join("rim_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rimc");
        let path_str = path.to_str().unwrap();

        let sim_args = args(&[
            "simulate",
            path_str,
            "--distance",
            "0.6",
            "--rate",
            "100",
            "--seed",
            "3",
        ]);
        simulate(&sim_args).expect("simulate");
        assert!(path.exists());

        let an_args = args(&["analyze", path_str]);
        analyze(&an_args).expect("analyze");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_rejects_wrong_array() {
        let dir = std::env::temp_dir().join("rim_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rimc");
        let path_str = path.to_str().unwrap();
        simulate(&args(&[
            "simulate",
            path_str,
            "--distance",
            "0.4",
            "--rate",
            "100",
        ]))
        .unwrap();
        let err = analyze(&args(&["analyze", path_str, "--array", "hexagonal"]))
            .expect_err("antenna mismatch");
        assert!(err.contains("antennas"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_paths_error() {
        assert!(simulate(&args(&["simulate"])).is_err());
        assert!(analyze(&args(&["analyze"])).is_err());
    }

    #[test]
    fn floorplan_prints() {
        floorplan(&args(&["floorplan"])).unwrap();
    }
}
