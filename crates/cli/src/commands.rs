//! The `rim` subcommands.

use crate::args::Args;
use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_channel::trajectory::{line, polyline, rotate_in_place, OrientationMode, Trajectory};
use rim_channel::{ChannelSimulator, SubcarrierLayout};
use rim_core::{ImuSample, Precision, Rim, RimConfig, RimStream};
use rim_csi::{CsiRecorder, DeviceConfig, LossModel, RecorderConfig};
use rim_dsp::geom::Point2;
use rim_sensors::{ImuConfig, ImuRecording, SimulatedImu};
use rim_tracking::Fuser;
use std::fs::File;
use std::io::{BufReader, BufWriter};

/// Usage text.
pub const USAGE: &str = "\
rim — RF-based inertial measurement (RIM, SIGCOMM 2019) in Rust

USAGE:
  rim simulate <out.rimc> [--scenario NAME] [--env lab|office]
               [--array linear2|linear3|linear4|hexagonal|l] [--bandwidth 20|40|80]
               [--distance M] [--speed M/S]
               [--rate HZ] [--loss SPEC] [--seed N] [--obs json|report]
               [--imu consumer|uncalibrated|ideal]
  rim analyze  <in.rimc> [<in2.rimc>…] [--array linear2|linear3|linear4|hexagonal|l]
               [--min-speed M/S] [--start X,Y] [--threads N] [--verbose]
               [--precision f64|f32] [--loss SPEC] [--loss-seed N]
               [--obs json|report] [--imu consumer|uncalibrated|ideal]
  rim serve    <in.rimc> [--sessions K] [--array linear2|linear3|linear4|hexagonal|l]
               [--min-speed M/S] [--threads N] [--precision f64|f32]
               [--queue N] [--latency-budget-us US] [--io-threads N]
               [--loss SPEC] [--loss-seed N] [--obs json|report]
               [--trace-every N] [--metrics-every MS]
               [--imu consumer|uncalibrated|ideal]
  rim serve    --listen ADDR [--rate HZ] [--array linear2|linear3|linear4|hexagonal|l]
               [--min-speed M/S] [--threads N] [--precision f64|f32]
               [--queue N] [--latency-budget-us US] [--io-threads N]
               [--trace-every N]
  rim top      ADDR [--interval-ms MS] [--iterations N]
  rim floorplan
  rim demo     [--seed N] [--obs json|report]
  rim help

  --scenario NAME is one of the classic shapes (line | square | rotation,
  parameterised by --distance/--speed) or a scenario-zoo workload with
  canonical parameters: walking | running | stop_and_go | stairs_pause |
  cart_push | shaking | rotation_while_translating (--seed feeds the zoo's
  RNG). --bandwidth selects the subcarrier grid the simulated NIC reports
  (20 MHz = 56, 40 MHz = 114 [default], 80 MHz = 242 subcarriers).

  --loss SPEC is `none`, a bare probability, `iid:P`, or
  `ge:ENTER,EXIT,GOOD,BAD` (Gilbert–Elliott burst loss). On simulate it
  drops packets per NIC while recording; on analyze it degrades the loaded
  capture post hoc (whole-device drops, seeded by --loss-seed) so gap
  tolerance can be tested against a stored clean capture.

  --obs report prints a per-stage observability table (timings, counters,
  diagnostics); --obs json emits the same run report as machine-readable
  JSON on stdout (and nothing else, so it pipes cleanly).

  analyze accepts several captures at once and fans them across the worker
  pool; --threads N sizes the pool (default: RIM_THREADS, then all cores).
  --precision selects the TRRS kernel arithmetic: f64 (default, the
  bit-exact reference) or f32 (the reduced-precision fast path, within
  1 mm / 0.1° of the reference per segment).

  serve starts the multi-session TCP service. With a capture it
  self-drives: --sessions K loopback clients each stream the capture
  (independently degraded when --loss is set) into their own session and
  the per-session estimates are printed; with --listen ADDR it serves
  external clients until one sends a shutdown request. --queue N bounds
  each session's ingress queue (full queues throttle the client).
  --latency-budget-us US throttles admission when the deadline scheduler
  predicts ingest→estimate latency would exceed the budget (0 = depth
  only); --io-threads N sizes the readiness-driven reactor worker set.

  --trace-every N traces every Nth admitted sample end to end (admission,
  queue wait, batch schedule, analysis, flush, wire-out; 0 = off). In
  self-drive mode --metrics-every MS polls the server's live telemetry
  snapshot mid-run and prints one `metrics:` digest line per poll.

  top polls a running server's telemetry (the same snapshot `--metrics-every`
  digests) and prints the full text exposition each interval; --iterations N
  stops after N polls (0 = until interrupted).

  --imu GRADE threads inertial data through the run. On simulate it samples
  the same ground-truth trajectory with a simulated IMU of that grade
  (consumer: phone-class noise; uncalibrated: strong gyro bias, distorted
  magnetometer; ideal: noiseless) and writes a `<out.rimc>.imu` sidecar.
  On analyze and self-drive serve it loads the capture's `.imu` sidecar and
  runs the RIM×IMU fusion engine (error-state Kalman filter with
  zero-velocity updates), emitting fused pose estimates alongside the
  CSI-only output; the grade selects filter noise densities matched to the
  sensor.
";

/// Appends the `.imu` sidecar suffix to a capture path. Written by
/// `simulate --imu`, read back by `analyze`/`serve --imu`.
fn imu_sidecar_path(capture: &str) -> String {
    format!("{capture}.imu")
}

/// Rejects `--options` the subcommand does not know. The parser accepts
/// any `--key value`, so without this check a typo like `--sceanrio` was
/// silently swallowed and the default used instead.
fn check_options(args: &Args, allowed: &[&str]) -> Result<(), String> {
    for key in args.options.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown option --{key} (valid options: {})",
                if allowed.is_empty() {
                    String::from("none")
                } else {
                    allowed
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            ));
        }
    }
    Ok(())
}

/// Observability output mode selected with `--obs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ObsMode {
    /// Machine-readable `RunReport` JSON, alone on stdout.
    Json,
    /// Human text table appended to the normal output.
    Report,
}

fn obs_mode(args: &Args) -> Result<Option<ObsMode>, String> {
    match args.options.get("obs").map(String::as_str) {
        None => Ok(None),
        Some("json") => Ok(Some(ObsMode::Json)),
        Some("report") => Ok(Some(ObsMode::Report)),
        Some(other) => Err(format!("--obs expects json or report, got {other:?}")),
    }
}

/// Resolves an array geometry by name.
fn array_by_name(name: &str) -> Result<ArrayGeometry, String> {
    match name {
        "linear2" => Ok(ArrayGeometry::linear(2, HALF_WAVELENGTH)),
        "linear3" => Ok(ArrayGeometry::linear(3, HALF_WAVELENGTH)),
        "linear4" => Ok(ArrayGeometry::linear(4, HALF_WAVELENGTH)),
        "hexagonal" => Ok(ArrayGeometry::hexagonal(HALF_WAVELENGTH)),
        "l" => Ok(ArrayGeometry::l_shape(HALF_WAVELENGTH)),
        other => Err(format!(
            "unknown array {other:?} (expected linear2 | linear3 | linear4 | hexagonal | l)"
        )),
    }
}

/// Resolves a channel bandwidth (MHz) to its subcarrier grid.
fn layout_by_bandwidth(mhz: u64) -> Result<SubcarrierLayout, String> {
    match mhz {
        20 => Ok(SubcarrierLayout::ht20_5ghz()),
        40 => Ok(SubcarrierLayout::ht40_5ghz()),
        80 => Ok(SubcarrierLayout::vht80_5ghz()),
        other => Err(format!(
            "unknown bandwidth {other} MHz (expected 20 | 40 | 80)"
        )),
    }
}

/// Resolves a TRRS precision mode by name.
fn precision_by_name(name: &str) -> Result<Precision, String> {
    match name {
        "f64" => Ok(Precision::F64Reference),
        "f32" => Ok(Precision::F32Fast),
        other => Err(format!("unknown precision {other:?} (expected f64 | f32)")),
    }
}

/// Resolves a simulated-IMU grade by name.
fn imu_by_name(name: &str) -> Result<ImuConfig, String> {
    match name {
        "consumer" => Ok(ImuConfig::consumer()),
        "uncalibrated" => Ok(ImuConfig::uncalibrated()),
        "ideal" => Ok(ImuConfig::ideal()),
        other => Err(format!(
            "unknown imu grade {other:?} (expected consumer | uncalibrated | ideal)"
        )),
    }
}

/// Builds a fusion engine with filter noise densities matched to the
/// named sensor grade: the filter should trust an ideal IMU far more
/// (and an uncalibrated one less) than the consumer defaults.
fn fuser_for(name: &str) -> Result<Fuser, String> {
    // Consumer parts carry a ~0.25 m/s² accelerometer turn-on bias the 2D
    // error state does not model, so the velocity process noise is raised
    // to absorb it (uncalibrated parts even more so).
    let builder = match name {
        "consumer" => Fuser::builder().accel_noise(0.3),
        "uncalibrated" => Fuser::builder().accel_noise(0.5).gyro_bias_walk(3e-4),
        "ideal" => Fuser::builder()
            .accel_noise(1e-4)
            .gyro_noise(1e-5)
            .gyro_bias_walk(1e-9),
        other => {
            return Err(format!(
                "unknown imu grade {other:?} (expected consumer | uncalibrated | ideal)"
            ))
        }
    };
    builder
        .build()
        .map_err(|e| format!("invalid fusion configuration: {e}"))
}

/// Loads a `.imu` sidecar and timestamps it into wire-ready samples.
fn load_imu_sidecar(capture: &str) -> Result<Vec<ImuSample>, String> {
    let sidecar = imu_sidecar_path(capture);
    let bytes = std::fs::read(&sidecar).map_err(|e| {
        format!("cannot open {sidecar}: {e} (generate one with `rim simulate --imu GRADE`)")
    })?;
    let rec = ImuRecording::from_bytes(&bytes).map_err(|e| format!("{sidecar}: {e}"))?;
    let fs = rec.sample_rate_hz;
    Ok((0..rec.len())
        .map(|i| ImuSample {
            t_us: (i as f64 / fs * 1e6) as u64,
            accel_body: rec.accel_body[i],
            gyro_z: rec.gyro_z[i],
            mag_orientation: Some(rec.mag_orientation[i]),
        })
        .collect())
}

/// Counts the fused pose estimates in a drained event batch.
fn count_fused(events: &[rim_core::StreamEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e, rim_core::StreamEvent::Fused { .. }))
        .count()
}

/// Splits the IMU samples due at or before `t_us` off the front of the
/// remaining slice: the batch to send before the CSI sample at `t_us`.
fn imu_due<'a>(remaining: &mut &'a [ImuSample], t_us: u64) -> &'a [ImuSample] {
    let n = remaining.iter().take_while(|s| s.t_us <= t_us).count();
    let (due, rest) = remaining.split_at(n);
    *remaining = rest;
    due
}

/// Resolves a simulation environment by name.
fn env_by_name(name: &str, seed: u64) -> Result<ChannelSimulator, String> {
    match name {
        "lab" => Ok(ChannelSimulator::open_lab(seed)),
        "office" => Ok(ChannelSimulator::office(0, seed)),
        other => Err(format!("unknown env {other:?} (expected lab | office)")),
    }
}

/// Builds the scenario trajectory: the three classic shapes
/// (parameterised by `--distance`/`--speed`) or any named scenario-zoo
/// workload (canonically parameterised; `--seed` feeds its RNG).
fn scenario(
    name: &str,
    env: &str,
    distance: f64,
    speed: f64,
    rate: f64,
    seed: u64,
) -> Result<Trajectory, String> {
    let start = if env == "office" {
        Point2::new(8.0, 13.0)
    } else {
        Point2::new(0.0, 2.0)
    };
    if let Some(traj) = rim_channel::scenarios::build(name, start, rate, seed) {
        return Ok(traj);
    }
    match name {
        "line" => Ok(line(
            start,
            0.0,
            distance,
            speed,
            rate,
            OrientationMode::Fixed(0.0),
        )),
        "square" => {
            let side = (distance / 4.0).max(0.3);
            let wps = [
                start,
                Point2::new(start.x + side, start.y),
                Point2::new(start.x + side, start.y + side),
                Point2::new(start.x, start.y + side),
                start,
            ];
            Ok(polyline(&wps, speed, rate, OrientationMode::Fixed(0.0)))
        }
        "rotation" => Ok(rotate_in_place(
            start,
            0.0,
            std::f64::consts::PI,
            std::f64::consts::PI,
            rate,
        )),
        other => Err(format!(
            "unknown scenario {other:?} (expected line | square | rotation | {})",
            rim_channel::scenarios::name_list()
        )),
    }
}

/// `rim simulate`.
pub fn simulate(args: &Args) -> Result<(), String> {
    check_options(
        args,
        &[
            "scenario",
            "env",
            "array",
            "bandwidth",
            "distance",
            "speed",
            "rate",
            "loss",
            "seed",
            "obs",
            "imu",
        ],
    )?;
    let obs = obs_mode(args)?;
    let out_path = args
        .positional
        .first()
        .ok_or("simulate needs an output path (e.g. out.rimc)")?;
    let seed = args.get_u64("seed", 7)?;
    let rate = args.get_f64("rate", 200.0)?;
    let speed = args.get_f64("speed", 1.0)?;
    let distance = args.get_f64("distance", 2.0)?;
    let loss =
        LossModel::parse(&args.get_str("loss", "none")).map_err(|e| format!("--loss: {e}"))?;
    let env_name = args.get_str("env", "lab");
    let array_name = args.get_str("array", "linear3");
    let scenario_name = args.get_str("scenario", "line");

    let mut sim = env_by_name(&env_name, seed)?;
    if let Some(mhz) = args.options.get("bandwidth") {
        let mhz: u64 = mhz
            .parse()
            .map_err(|_| format!("--bandwidth expects a number in MHz, got {mhz:?}"))?;
        sim = sim.with_layout(layout_by_bandwidth(mhz)?);
    }
    let geometry = array_by_name(&array_name)?;
    let traj = scenario(&scenario_name, &env_name, distance, speed, rate, seed)?;

    let mut device = if geometry.nic_groups().len() == 2 {
        DeviceConfig::dual_nic(geometry.offsets().to_vec())
    } else {
        DeviceConfig::single_nic(geometry.offsets().to_vec())
    };
    if loss != LossModel::None {
        device = device.with_loss(loss);
    }
    let recorder = rim_obs::Recorder::new();
    let csi_recorder = CsiRecorder::new(
        &sim,
        device,
        RecorderConfig {
            sanitize: true,
            seed,
        },
    );
    let recording = if obs.is_some() {
        csi_recorder.record_probed(&traj, &recorder)
    } else {
        csi_recorder.record(&traj)
    };

    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    rim_csi::storage::save_recording(&recording, BufWriter::new(file))
        .map_err(|e| format!("write failed: {e}"))?;
    // The IMU sidecar samples the same ground-truth trajectory, so the
    // capture and the inertial streams describe one physical run.
    if let Some(grade) = args.options.get("imu") {
        let imu = SimulatedImu::new(imu_by_name(grade)?, seed).sample(&traj);
        let sidecar = imu_sidecar_path(out_path);
        std::fs::write(&sidecar, imu.to_bytes())
            .map_err(|e| format!("cannot write {sidecar}: {e}"))?;
        if obs != Some(ObsMode::Json) {
            println!(
                "wrote {sidecar}: {} IMU samples at {} Hz ({grade} grade)",
                imu.len(),
                imu.sample_rate_hz
            );
        }
    }
    if obs == Some(ObsMode::Json) {
        println!("{}", recorder.report().to_json());
        return Ok(());
    }
    println!(
        "wrote {out_path}: {} samples × {} antennas at {rate} Hz \
         ({scenario_name} in {env_name}, {:.2} m ground truth, loss {:.0}%)",
        recording.n_samples(),
        recording.n_antennas(),
        traj.total_distance(),
        recording.loss_rate() * 100.0,
    );
    if obs == Some(ObsMode::Report) {
        print!("{}", recorder.report().render());
    }
    Ok(())
}

/// `rim analyze`.
pub fn analyze(args: &Args) -> Result<(), String> {
    check_options(
        args,
        &[
            "array",
            "min-speed",
            "start",
            "verbose",
            "obs",
            "threads",
            "precision",
            "loss",
            "loss-seed",
            "imu",
        ],
    )?;
    let obs = obs_mode(args)?;
    if args.positional.is_empty() {
        return Err("analyze needs an input path (a .rimc capture)".into());
    }
    let array_name = args.get_str("array", "linear3");
    let min_speed = args.get_f64("min-speed", 0.3)?;
    let threads = args.get_u64("threads", 0)? as usize;
    let precision = precision_by_name(&args.get_str("precision", "f64"))?;
    let loss =
        LossModel::parse(&args.get_str("loss", "none")).map_err(|e| format!("--loss: {e}"))?;
    let loss_seed = args.get_u64("loss-seed", 1)?;
    let geometry = array_by_name(&array_name)?;

    let mut loaded = Vec::new();
    for (k, in_path) in args.positional.iter().enumerate() {
        let file = File::open(in_path).map_err(|e| format!("cannot open {in_path}: {e}"))?;
        let mut recording = rim_csi::storage::load_recording(BufReader::new(file))
            .map_err(|e| format!("load failed: {e}"))?;
        if loss != LossModel::None {
            // Post-hoc transport loss: each capture gets its own derived
            // seed so multi-capture runs do not share one realisation.
            recording = recording.degrade(loss, loss_seed.wrapping_add(k as u64));
        }
        if recording.n_antennas() != geometry.n_antennas() {
            return Err(format!(
                "capture {in_path} has {} antennas but array {array_name:?} has {} — \
                 pass --array",
                recording.n_antennas(),
                geometry.n_antennas()
            ));
        }
        let dense = recording.interpolated().ok_or_else(|| {
            format!("capture {in_path} is not interpolable (an antenna lost every packet)")
        })?;
        loaded.push((in_path.as_str(), recording, dense));
    }
    let imu_grade = args.options.get("imu").cloned();
    if imu_grade.is_some() && loaded.len() > 1 {
        return Err("--imu fuses one capture with its sidecar; pass a single capture".into());
    }
    let fs = loaded[0].2.sample_rate_hz;
    let config = RimConfig::for_sample_rate(fs)
        .with_min_speed(min_speed, HALF_WAVELENGTH, fs)
        .with_threads(threads)
        .precision(precision);
    // The fused pass streams through its own engine instance, so it needs
    // the geometry/config pair before `Rim::new` takes ownership.
    let fusion_setup = imu_grade
        .as_deref()
        .map(|grade| -> Result<_, String> {
            Ok((
                fuser_for(grade)?,
                load_imu_sidecar(args.positional[0].as_str())?,
                geometry.clone(),
                config.clone(),
            ))
        })
        .transpose()?;
    // Config/geometry errors surface as one-line messages, not backtraces.
    let rim = Rim::new(geometry, config).map_err(|e| e.to_string())?;

    // Several captures: fan the independent sessions across the worker
    // pool and print one summary line per capture.
    if loaded.len() > 1 {
        let recorder = rim_obs::Recorder::new();
        let denses: Vec<&rim_csi::recorder::DenseCsi> = loaded.iter().map(|l| &l.2).collect();
        let estimates = if obs.is_some() {
            rim.session().probe(&recorder).analyze_batch(&denses)
        } else {
            rim.session().analyze_batch(&denses)
        }
        .map_err(|e| e.to_string())?;
        if obs == Some(ObsMode::Json) {
            println!("{}", recorder.report().to_json());
            return Ok(());
        }
        for ((path, recording, dense), est) in loaded.iter().zip(&estimates) {
            println!(
                "{path}: {} samples at {} Hz, loss {:.1}%, total distance {:.3} m",
                dense.n_samples(),
                dense.sample_rate_hz,
                recording.loss_rate() * 100.0,
                est.total_distance()
            );
        }
        if obs == Some(ObsMode::Report) {
            print!("{}", recorder.report().render());
        }
        return Ok(());
    }

    let (in_path, recording, dense) = &loaded[0];
    let recorder = rim_obs::Recorder::new();
    let estimate = if obs.is_some() {
        rim.session().probe(&recorder).analyze(dense)
    } else {
        rim.analyze(dense)
    }
    .map_err(|e| e.to_string())?;

    if obs == Some(ObsMode::Json) {
        println!("{}", recorder.report().to_json());
        return Ok(());
    }
    println!(
        "{in_path}: {} samples at {fs} Hz, loss {:.1}%",
        dense.n_samples(),
        recording.loss_rate() * 100.0
    );
    println!("total distance : {:.3} m", estimate.total_distance());
    if estimate.total_rotation().abs() > 1e-9 {
        println!(
            "net rotation   : {:.1}°",
            estimate.total_rotation().to_degrees()
        );
    }
    for seg in &estimate.segments {
        println!(
            "segment [{:.2}s..{:.2}s] {:?}: {:.3} m{}{}, confidence {:.2}{}",
            seg.start as f64 / fs,
            seg.end as f64 / fs,
            seg.kind,
            seg.distance_m,
            seg.heading_device
                .map(|h| format!(", heading {:.0}°", h.to_degrees()))
                .unwrap_or_default(),
            if seg.rotation_rad.abs() > 1e-9 {
                format!(", rotation {:.1}°", seg.rotation_rad.to_degrees())
            } else {
                String::new()
            },
            seg.confidence.score(),
            if seg.confidence.interpolated_fraction > 0.0 {
                format!(
                    " ({:.0}% interpolated)",
                    seg.confidence.interpolated_fraction * 100.0
                )
            } else {
                String::new()
            },
        );
    }
    if let Some((fuser, imu, geometry, config)) = fusion_setup {
        let grade = imu_grade.as_deref().unwrap_or("consumer");
        let mut stream = fuser.stream(RimStream::new(geometry, config).map_err(|e| e.to_string())?);
        let mut remaining = imu.as_slice();
        let mut fused_events = 0usize;
        for i in 0..dense.n_samples() {
            let t_us = (i as f64 / fs * 1e6) as u64;
            let due = imu_due(&mut remaining, t_us);
            if !due.is_empty() {
                fused_events += count_fused(&stream.ingest(due).map_err(|e| e.to_string())?);
            }
            let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
            stream.ingest(snaps).map_err(|e| e.to_string())?;
        }
        if !remaining.is_empty() {
            fused_events += count_fused(&stream.ingest(remaining).map_err(|e| e.to_string())?);
        }
        stream.finish();
        println!(
            "fusion ({grade}): position ({:.3}, {:.3}), heading {:.1}°, \
             total distance {:.3} m, {fused_events} fused estimates, \
             {} RIM updates, {} ZUPT events, {:.2} s coasted",
            stream.position().x,
            stream.position().y,
            stream.heading().to_degrees(),
            stream.total_distance(),
            stream.rim_updates(),
            stream.zupt_count(),
            stream.coast_time_us() as f64 / 1e6,
        );
    }
    if args.flag("verbose") {
        let start_opt = args.get_str("start", "0,0");
        let mut it = start_opt.split(',');
        let (sx, sy) = (
            it.next().and_then(|v| v.parse().ok()).unwrap_or(0.0),
            it.next().and_then(|v| v.parse().ok()).unwrap_or(0.0),
        );
        let track = estimate.trajectory(Point2::new(sx, sy), 0.0);
        println!("trajectory (every 0.5 s):");
        let step = (fs / 2.0) as usize;
        for (i, p) in track.iter().enumerate().step_by(step.max(1)) {
            println!("  t={:6.2}s  ({:7.3}, {:7.3})", i as f64 / fs, p.x, p.y);
        }
    }
    if obs == Some(ObsMode::Report) {
        print!(
            "{}",
            render_obs_report(&recorder, rim.config(), dense, &estimate)
        );
    }
    Ok(())
}

/// Full observability report: the per-stage table plus the paper-figure
/// diagnostics (movement-indicator sparkline, alignment-matrix heatmap of
/// the first moving segment) promoted from `rim_core::diagnostics`.
fn render_obs_report(
    recorder: &rim_obs::Recorder,
    config: &RimConfig,
    dense: &rim_csi::recorder::DenseCsi,
    estimate: &rim_core::MotionEstimate,
) -> String {
    let mut out = recorder.report().render();
    out.push_str("\nmovement indicator (self-TRRS, lower = moving):\n");
    out.push_str(&rim_core::diagnostics::render_trace(
        &estimate.movement_indicator,
        72,
        6,
    ));
    if let Some(seg) = estimate.segments.first() {
        // Heatmap of the first segment's alignment matrix (first antenna
        // pair), bounded so long captures stay readable and cheap.
        let end = seg.end.min(seg.start + 600).min(dense.n_samples());
        if end > seg.start + 4 && dense.n_antennas() >= 2 {
            let a = rim_core::NormSnapshot::series(&dense.antennas[0][seg.start..end]);
            let b = rim_core::NormSnapshot::series(&dense.antennas[1][seg.start..end]);
            let m = rim_core::alignment_matrix(&a, &b, config.alignment);
            out.push_str(&format!(
                "\nalignment matrix, segment [{}..{}) antennas (0,1):\n",
                seg.start, end
            ));
            out.push_str(&rim_core::diagnostics::render_matrix(&m, 72, 16));
        }
    }
    out
}

/// `rim serve` — the multi-session CSI service over the TCP wire
/// protocol. Without `--listen` it self-drives: K loopback clients
/// stream a capture into their own sessions concurrently, exercising
/// admission, cross-session batching, and the wire round trip in one
/// process.
pub fn serve(args: &Args) -> Result<(), String> {
    check_options(
        args,
        &[
            "listen",
            "rate",
            "sessions",
            "array",
            "min-speed",
            "threads",
            "precision",
            "queue",
            "latency-budget-us",
            "io-threads",
            "loss",
            "loss-seed",
            "obs",
            "trace-every",
            "metrics-every",
            "imu",
        ],
    )?;
    let obs = obs_mode(args)?;
    let array_name = args.get_str("array", "linear3");
    let geometry = array_by_name(&array_name)?;
    let min_speed = args.get_f64("min-speed", 0.3)?;
    let threads = args.get_u64("threads", 0)? as usize;
    let precision = precision_by_name(&args.get_str("precision", "f64"))?;
    let trace_every = args.get_u64("trace-every", 0)? as usize;
    let metrics_every = args.get_u64("metrics-every", 0)?;
    let defaults = rim_serve::ServeConfig::default();
    // One validated constructor path for every mode (listen, self-drive):
    // invalid combinations die here with the builder's diagnostic instead
    // of surfacing as runtime misbehaviour.
    let serve_cfg = rim_serve::ServeConfig::builder()
        .queue_depth(args.get_u64("queue", 256)? as usize)
        .latency_budget_us(args.get_u64("latency-budget-us", defaults.latency_budget_us())?)
        .io_threads(args.get_u64("io-threads", defaults.io_threads() as u64)? as usize)
        .trace_every(trace_every)
        .metrics_every_ms(metrics_every)
        .build()
        .map_err(|e| format!("invalid serve configuration: {e}"))?;

    // Listen mode: front external clients until one sends shutdown.
    if args.flag("listen") {
        if args.options.contains_key("imu") {
            return Err(
                "--imu applies to self-drive serve (external clients send their own IMU batches)"
                    .into(),
            );
        }
        let addr = args.get_str("listen", "127.0.0.1:0");
        let rate = args.get_f64("rate", 200.0)?;
        let config = RimConfig::for_sample_rate(rate)
            .with_min_speed(min_speed, HALF_WAVELENGTH, rate)
            .with_threads(threads)
            .precision(precision)
            .with_trace_sampling(trace_every);
        let manager = std::sync::Arc::new(
            rim_serve::SessionManager::new(geometry, config, serve_cfg)
                .map_err(|e| e.to_string())?,
        );
        let mut server =
            rim_serve::Server::bind(addr.as_str(), manager).map_err(|e| e.to_string())?;
        println!(
            "serving on {} ({rate} Hz, array {array_name})",
            server.local_addr()
        );
        server.wait();
        println!("shutdown requested; served cleanly");
        return Ok(());
    }

    // Self-drive mode.
    let in_path = args
        .positional
        .first()
        .ok_or("serve needs a capture to self-drive, or --listen ADDR")?;
    let sessions = args.get_u64("sessions", 4)?.max(1);
    let loss =
        LossModel::parse(&args.get_str("loss", "none")).map_err(|e| format!("--loss: {e}"))?;
    let loss_seed = args.get_u64("loss-seed", 1)?;

    let file = File::open(in_path).map_err(|e| format!("cannot open {in_path}: {e}"))?;
    let recording = rim_csi::storage::load_recording(BufReader::new(file))
        .map_err(|e| format!("load failed: {e}"))?;
    if recording.n_antennas() != geometry.n_antennas() {
        return Err(format!(
            "capture {in_path} has {} antennas but array {array_name:?} has {} — pass --array",
            recording.n_antennas(),
            geometry.n_antennas()
        ));
    }
    // With --imu every session interleaves the capture's sidecar batches
    // with its CSI stream, and the server fuses with grade-matched noise.
    let imu_grade = args.options.get("imu").cloned();
    let imu_shared = imu_grade
        .as_deref()
        .map(|grade| -> Result<_, String> {
            Ok((fuser_for(grade)?, load_imu_sidecar(in_path.as_str())?))
        })
        .transpose()?;
    let fs = recording.sample_rate_hz;
    let config = RimConfig::for_sample_rate(fs)
        .with_min_speed(min_speed, HALF_WAVELENGTH, fs)
        .with_threads(threads)
        .precision(precision)
        .with_trace_sampling(trace_every);
    let (fuser, imu_samples) = match imu_shared {
        Some((fuser, samples)) => (fuser, std::sync::Arc::new(samples)),
        None => (
            Fuser::builder()
                .build()
                .map_err(|e| format!("invalid fusion configuration: {e}"))?,
            std::sync::Arc::new(Vec::new()),
        ),
    };
    let manager = std::sync::Arc::new(
        rim_serve::SessionManager::with_fuser(geometry, config, serve_cfg, fuser)
            .map_err(|e| e.to_string())?,
    );
    let mut server = rim_serve::Server::bind("127.0.0.1:0", std::sync::Arc::clone(&manager))
        .map_err(|e| e.to_string())?;
    let addr = server.local_addr();

    // Mid-run telemetry polling over its own connection, so the digest
    // reflects what an external `rim top` would see.
    let stop_metrics = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let metrics_handle = (metrics_every > 0).then(|| {
        let stop = std::sync::Arc::clone(&stop_metrics);
        std::thread::spawn(move || {
            let Ok(mut client) = rim_serve::Client::connect(addr) else {
                return;
            };
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_millis(metrics_every.max(1)));
                match client.metrics() {
                    Ok(text) => println!("{}", metrics_digest(&text)),
                    Err(_) => return,
                }
            }
        })
    });

    let mut handles = Vec::new();
    for k in 0..sessions {
        let recording = if loss != LossModel::None {
            recording.degrade(loss, loss_seed.wrapping_add(k))
        } else {
            recording.clone()
        };
        let imu = std::sync::Arc::clone(&imu_samples);
        handles.push(std::thread::spawn(move || -> Result<_, String> {
            let samples = rim_csi::sync::synced_from_recording(&recording);
            let sent = samples.len();
            let mut client =
                rim_serve::Client::connect(addr).map_err(|e| format!("session {k}: {e}"))?;
            let mut events = Vec::new();
            let mut remaining = imu.as_slice();
            for (i, sample) in samples.into_iter().enumerate() {
                let due = imu_due(&mut remaining, (i as f64 / fs * 1e6) as u64);
                if !due.is_empty() {
                    let (admit, drained) = client
                        .ingest_imu_blocking(k, due.to_vec())
                        .map_err(|e| format!("session {k}: {e}"))?;
                    if let rim_serve::Admit::Rejected { reason } = admit {
                        return Err(format!("session {k} imu rejected: {reason:?}"));
                    }
                    events.extend(drained);
                }
                let (admit, drained) = client
                    .ingest_blocking(k, sample)
                    .map_err(|e| format!("session {k}: {e}"))?;
                if let rim_serve::Admit::Rejected { reason } = admit {
                    return Err(format!("session {k} rejected: {reason:?}"));
                }
                events.extend(drained);
            }
            if !remaining.is_empty() {
                let (admit, drained) = client
                    .ingest_imu_blocking(k, remaining.to_vec())
                    .map_err(|e| format!("session {k}: {e}"))?;
                if let rim_serve::Admit::Rejected { reason } = admit {
                    return Err(format!("session {k} imu rejected: {reason:?}"));
                }
                events.extend(drained);
            }
            events.extend(client.finish(k).map_err(|e| format!("session {k}: {e}"))?);
            Ok((k, sent, events))
        }));
    }
    let mut results = Vec::new();
    for h in handles {
        results.push(h.join().map_err(|_| "session thread panicked")??);
    }
    if metrics_every > 0 {
        stop_metrics.store(true, std::sync::atomic::Ordering::Release);
        if let Some(h) = metrics_handle {
            let _ = h.join();
        }
        // A final snapshot after every session finished, so even a run
        // shorter than one poll interval emits at least one digest.
        let text = rim_serve::Client::connect(addr)
            .and_then(|mut c| c.metrics())
            .map_err(|e| e.to_string())?;
        println!("{}", metrics_digest(&text));
    }
    // Shut the server down over the wire, then join its threads.
    rim_serve::Client::connect(addr)
        .and_then(|mut c| c.shutdown())
        .map_err(|e| e.to_string())?;
    server.shutdown();

    if obs == Some(ObsMode::Json) {
        println!("{}", manager.report().to_json());
        return Ok(());
    }
    println!(
        "served {sessions} sessions × {} samples over {addr} ({fs} Hz, array {array_name})",
        results.first().map_or(0, |(_, sent, _)| *sent),
    );
    for (k, sent, events) in &results {
        let segments: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                rim_core::StreamEvent::Segment(s) => Some(s),
                _ => None,
            })
            .collect();
        let distance: f64 = segments.iter().map(|s| s.distance_m).sum();
        let provisionals = events
            .iter()
            .filter(|e| matches!(e, rim_core::StreamEvent::Provisional { .. }))
            .count();
        let early = events
            .iter()
            .take_while(|e| !matches!(e, rim_core::StreamEvent::Segment(_)))
            .filter(|e| matches!(e, rim_core::StreamEvent::Provisional { .. }))
            .count();
        let fused = count_fused(events);
        println!(
            "session {k}: {sent} samples, {} events, {} segments, {provisionals} provisionals \
             ({early} before first close), {distance:.3} m{}",
            events.len(),
            segments.len(),
            if imu_grade.is_some() {
                format!(", {fused} fused estimates")
            } else {
                String::new()
            },
        );
    }
    if obs == Some(ObsMode::Report) {
        print!("{}", manager.report().render());
    }
    Ok(())
}

/// One-line summary of a telemetry snapshot for `--metrics-every`,
/// checking well-formedness so a garbled exposition is visible in the
/// output rather than silently digested.
fn metrics_digest(text: &str) -> String {
    if !text.starts_with("# rim-serve metrics v1") {
        return String::from("metrics: malformed snapshot");
    }
    let lines = text.lines().count();
    let traces = text.lines().filter(|l| l.starts_with("trace ")).count();
    let with_queue_wait = text
        .lines()
        .filter(|l| l.starts_with("trace ") && l.contains("queue_wait="))
        .count();
    format!(
        "metrics: snapshot {lines} lines, {traces} traces, {with_queue_wait} with queue_wait spans"
    )
}

/// `rim top` — poll a running server's live telemetry and print the
/// full text exposition each interval.
pub fn top(args: &Args) -> Result<(), String> {
    check_options(args, &["interval-ms", "iterations"])?;
    let addr = args
        .positional
        .first()
        .ok_or("top needs a server address (HOST:PORT)")?;
    let interval = args.get_u64("interval-ms", 1000)?;
    let iterations = args.get_u64("iterations", 0)?;
    let mut client = rim_serve::Client::connect(addr.as_str())
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut polled = 0u64;
    loop {
        let text = client.metrics().map_err(|e| e.to_string())?;
        println!("--- {addr} ---");
        print!("{text}");
        polled += 1;
        if iterations > 0 && polled >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval.max(1)));
    }
}

/// `rim floorplan`.
pub fn floorplan(args: &Args) -> Result<(), String> {
    check_options(args, &[])?;
    let (fp, aps) = rim_channel::office_floorplan();
    let (lo, hi) = fp.bounds().expect("walls");
    println!(
        "office testbed: {:.1} m × {:.1} m, {} walls, {} AP locations",
        hi.x - lo.x,
        hi.y - lo.y,
        fp.len(),
        aps.len()
    );
    for (k, ap) in aps.iter().enumerate() {
        println!("  AP #{k}: ({:.1}, {:.1})", ap.x, ap.y);
    }
    Ok(())
}

/// `rim demo` — a self-contained end-to-end run.
pub fn demo(args: &Args) -> Result<(), String> {
    check_options(args, &["seed", "obs"])?;
    let obs = obs_mode(args)?;
    let seed = args.get_u64("seed", 7)?;
    let sim = ChannelSimulator::open_lab(seed);
    let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        1.0,
        1.0,
        200.0,
        OrientationMode::FollowPath,
    );
    let recorder = rim_obs::Recorder::new();
    let csi_recorder = CsiRecorder::new(
        &sim,
        DeviceConfig::single_nic(geometry.offsets().to_vec()),
        RecorderConfig {
            sanitize: true,
            seed,
        },
    );
    let recording = if obs.is_some() {
        csi_recorder.record_probed(&traj, &recorder)
    } else {
        csi_recorder.record(&traj)
    };
    let dense = recording
        .interpolated()
        .ok_or("recording not interpolable")?;
    let config = RimConfig::for_sample_rate(200.0).with_min_speed(0.3, HALF_WAVELENGTH, 200.0);
    let rim = Rim::new(geometry, config).map_err(|e| e.to_string())?;
    let est = if obs.is_some() {
        rim.session().probe(&recorder).analyze(&dense)
    } else {
        rim.analyze(&dense)
    }
    .map_err(|e| e.to_string())?;
    if obs == Some(ObsMode::Json) {
        println!("{}", recorder.report().to_json());
        return Ok(());
    }
    println!(
        "demo: pushed the array 1.000 m; RIM measured {:.3} m ({:+.1} cm)",
        est.total_distance(),
        (est.total_distance() - 1.0) * 100.0
    );
    if obs == Some(ObsMode::Report) {
        print!(
            "{}",
            render_obs_report(&recorder, rim.config(), &dense, &est)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn args(list: &[&str]) -> Args {
        parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn array_names_resolve() {
        assert_eq!(array_by_name("linear2").unwrap().n_antennas(), 2);
        assert_eq!(array_by_name("linear3").unwrap().n_antennas(), 3);
        assert_eq!(array_by_name("linear4").unwrap().n_antennas(), 4);
        assert_eq!(array_by_name("hexagonal").unwrap().n_antennas(), 6);
        assert_eq!(array_by_name("l").unwrap().n_antennas(), 3);
        assert!(array_by_name("bogus").is_err());
    }

    #[test]
    fn bandwidths_resolve_to_grids() {
        assert_eq!(layout_by_bandwidth(20).unwrap().n_subcarriers(), 56);
        assert_eq!(layout_by_bandwidth(40).unwrap().n_subcarriers(), 114);
        assert_eq!(layout_by_bandwidth(80).unwrap().n_subcarriers(), 242);
        assert!(layout_by_bandwidth(160).is_err());
    }

    #[test]
    fn scenario_names_resolve() {
        assert!(scenario("line", "lab", 1.0, 1.0, 100.0, 7).is_ok());
        assert!(scenario("square", "lab", 2.0, 1.0, 100.0, 7).is_ok());
        assert!(scenario("rotation", "lab", 0.0, 1.0, 100.0, 7).is_ok());
        // Every zoo workload is parseable straight from the CLI.
        for spec in rim_channel::scenarios::ZOO {
            assert!(
                scenario(spec.name, "lab", 1.0, 1.0, 100.0, spec.default_seed).is_ok(),
                "{} resolves",
                spec.name
            );
        }
        let err = scenario("bogus", "lab", 1.0, 1.0, 100.0, 7).unwrap_err();
        assert!(err.contains("walking"), "error lists zoo names: {err}");
    }

    #[test]
    fn simulate_then_analyze_round_trip() {
        let dir = std::env::temp_dir().join("rim_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rimc");
        let path_str = path.to_str().unwrap();

        let sim_args = args(&[
            "simulate",
            path_str,
            "--distance",
            "0.6",
            "--rate",
            "100",
            "--seed",
            "3",
        ]);
        simulate(&sim_args).expect("simulate");
        assert!(path.exists());

        let an_args = args(&["analyze", path_str]);
        analyze(&an_args).expect("analyze");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zoo_scenario_round_trips_on_a_heterogeneous_device() {
        // A zoo workload on a non-default shape: 2-antenna array on a
        // 20 MHz (56-subcarrier) grid, analyzed back with the same array.
        let dir = std::env::temp_dir().join("rim_cli_test_zoo");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rimc");
        let path_str = path.to_str().unwrap();
        simulate(&args(&[
            "simulate",
            path_str,
            "--scenario",
            "stop_and_go",
            "--array",
            "linear2",
            "--bandwidth",
            "20",
            "--rate",
            "50",
        ]))
        .expect("simulate");
        analyze(&args(&["analyze", path_str, "--array", "linear2"])).expect("analyze");
        let err = simulate(&args(&[
            "simulate",
            path_str,
            "--bandwidth",
            "160",
            "--rate",
            "50",
        ]))
        .unwrap_err();
        assert!(err.contains("bandwidth"), "rejects unknown widths: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_rejects_wrong_array() {
        let dir = std::env::temp_dir().join("rim_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rimc");
        let path_str = path.to_str().unwrap();
        simulate(&args(&[
            "simulate",
            path_str,
            "--distance",
            "0.4",
            "--rate",
            "100",
        ]))
        .unwrap();
        let err = analyze(&args(&["analyze", path_str, "--array", "hexagonal"]))
            .expect_err("antenna mismatch");
        assert!(err.contains("antennas"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_paths_error() {
        assert!(simulate(&args(&["simulate"])).is_err());
        assert!(analyze(&args(&["analyze"])).is_err());
    }

    #[test]
    fn loss_specs_parse_and_degrade_on_analyze() {
        let dir = std::env::temp_dir().join("rim_cli_test_loss");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rimc");
        let path_str = path.to_str().unwrap();
        simulate(&args(&[
            "simulate",
            path_str,
            "--distance",
            "0.6",
            "--rate",
            "100",
            "--seed",
            "3",
        ]))
        .unwrap();
        // Post-hoc burst loss on a clean capture must analyze cleanly.
        analyze(&args(&[
            "analyze",
            path_str,
            "--loss",
            "ge:0.05,0.2,0.01,0.8",
            "--loss-seed",
            "11",
        ]))
        .expect("burst-degraded capture analyzes");
        // Bad specs fail with an actionable message on both subcommands.
        let err = simulate(&args(&["simulate", path_str, "--loss", "burst"]))
            .expect_err("bad spec rejected");
        assert!(err.contains("ge:"), "{err}");
        let err = analyze(&args(&["analyze", path_str, "--loss", "iid:2"]))
            .expect_err("out-of-range rejected");
        assert!(err.contains("iid"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_options_are_rejected_with_valid_list() {
        // A typo'd option must error instead of silently using defaults.
        let err = simulate(&args(&["simulate", "out.rimc", "--sceanrio", "line"]))
            .expect_err("typo rejected");
        assert!(err.contains("--sceanrio"), "{err}");
        assert!(err.contains("--scenario"), "lists valid options: {err}");
        let err = analyze(&args(&["analyze", "in.rimc", "--distance", "2"]))
            .expect_err("simulate-only option rejected on analyze");
        assert!(err.contains("--distance"), "{err}");
        let err = floorplan(&args(&["floorplan", "--seed", "1"])).expect_err("no options");
        assert!(err.contains("none"), "{err}");
        let err = demo(&args(&["demo", "--obs", "xml"])).expect_err("bad obs mode");
        assert!(err.contains("json or report"), "{err}");
    }

    #[test]
    fn demo_obs_json_is_parseable_and_covers_pipeline() {
        // `demo --obs json` must produce a valid RunReport that includes
        // the CSI ingest stage and the translation pipeline stages.
        let seed = args(&["demo", "--seed", "7", "--obs", "json"]);
        let obs = obs_mode(&seed).unwrap();
        assert_eq!(obs, Some(ObsMode::Json));
        // Run the same path demo() takes, capturing the report object
        // rather than stdout.
        let sim = ChannelSimulator::open_lab(7);
        let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let traj = line(
            Point2::new(0.0, 2.0),
            0.0,
            1.0,
            1.0,
            200.0,
            OrientationMode::FollowPath,
        );
        let recorder = rim_obs::Recorder::new();
        let dense = CsiRecorder::new(
            &sim,
            DeviceConfig::single_nic(geometry.offsets().to_vec()),
            RecorderConfig {
                sanitize: true,
                seed: 7,
            },
        )
        .record_probed(&traj, &recorder)
        .interpolated()
        .unwrap();
        let config = RimConfig::for_sample_rate(200.0).with_min_speed(0.3, HALF_WAVELENGTH, 200.0);
        Rim::new(geometry, config)
            .unwrap()
            .session()
            .probe(&recorder)
            .analyze(&dense)
            .unwrap();
        let report = recorder.report();
        let round_trip = rim_obs::RunReport::from_json(&report.to_json()).expect("valid JSON");
        for stage in rim_obs::stage::PIPELINE {
            assert!(
                round_trip.stage(stage).is_some(),
                "stage {stage} missing from report"
            );
        }
        assert!(round_trip.stage(rim_obs::stage::CSI_INGEST).is_some());
    }

    #[test]
    fn imu_grades_resolve_and_gate_fusion() {
        assert!(imu_by_name("consumer").is_ok());
        assert!(imu_by_name("uncalibrated").is_ok());
        assert!(imu_by_name("ideal").is_ok());
        let err = imu_by_name("military").expect_err("unknown grade");
        assert!(err.contains("consumer | uncalibrated | ideal"), "{err}");
        assert!(fuser_for("ideal").is_ok());
        assert!(fuser_for("bogus").is_err());
    }

    #[test]
    fn simulate_with_imu_writes_sidecar_and_analyze_fuses_it() {
        let dir = std::env::temp_dir().join("rim_cli_test_imu");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rimc");
        let path_str = path.to_str().unwrap();
        simulate(&args(&[
            "simulate",
            path_str,
            "--distance",
            "0.6",
            "--rate",
            "100",
            "--seed",
            "3",
            "--imu",
            "consumer",
        ]))
        .expect("simulate with sidecar");
        let sidecar = imu_sidecar_path(path_str);
        let rec = ImuRecording::from_bytes(&std::fs::read(&sidecar).unwrap()).expect("sidecar");
        assert!(!rec.is_empty());
        assert_eq!(rec.sample_rate_hz, 100.0);
        analyze(&args(&["analyze", path_str, "--imu", "consumer"])).expect("fused analyze");
        // Unknown grades and a missing sidecar fail with actionable errors.
        let err =
            analyze(&args(&["analyze", path_str, "--imu", "tactical"])).expect_err("unknown grade");
        assert!(err.contains("tactical"), "{err}");
        std::fs::remove_file(&sidecar).unwrap();
        let err =
            analyze(&args(&["analyze", path_str, "--imu", "consumer"])).expect_err("no sidecar");
        assert!(err.contains("simulate --imu"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_self_drives_with_imu_sidecar() {
        let dir = std::env::temp_dir().join("rim_cli_test_serve_imu");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rimc");
        let path_str = path.to_str().unwrap();
        simulate(&args(&[
            "simulate",
            path_str,
            "--distance",
            "0.5",
            "--rate",
            "100",
            "--seed",
            "5",
            "--imu",
            "ideal",
        ]))
        .unwrap();
        serve(&args(&[
            "serve",
            path_str,
            "--sessions",
            "2",
            "--imu",
            "ideal",
        ]))
        .expect("fused self-drive serves cleanly");
        // Listen mode has no capture to pull a sidecar from.
        let err = serve(&args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--imu",
            "consumer",
        ]))
        .expect_err("imu rejected in listen mode");
        assert!(err.contains("self-drive"), "{err}");
        std::fs::remove_file(imu_sidecar_path(path_str)).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_digest_summarises_and_flags_garbage() {
        let text = "# rim-serve metrics v1\n\
                    serve.samples_admitted 5\n\
                    trace 1 session=3 seq=0 total_us=120 admission=2 queue_wait=80\n\
                    trace 2 session=3 seq=1 total_us=90 admission=1\n";
        assert_eq!(
            metrics_digest(text),
            "metrics: snapshot 4 lines, 2 traces, 1 with queue_wait spans"
        );
        assert_eq!(metrics_digest("nonsense"), "metrics: malformed snapshot");
    }

    #[test]
    fn top_polls_a_live_server() {
        let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let config = RimConfig::for_sample_rate(100.0);
        let manager = std::sync::Arc::new(
            rim_serve::SessionManager::new(geometry, config, rim_serve::ServeConfig::default())
                .unwrap(),
        );
        let mut server = rim_serve::Server::bind("127.0.0.1:0", manager).unwrap();
        let addr = server.local_addr().to_string();
        top(&args(&[
            "top",
            &addr,
            "--iterations",
            "2",
            "--interval-ms",
            "1",
        ]))
        .expect("top polls");
        assert!(top(&args(&["top"])).is_err(), "address is required");
        server.shutdown();
    }

    #[test]
    fn floorplan_prints() {
        floorplan(&args(&["floorplan"])).unwrap();
    }

    #[test]
    fn serve_self_drives_concurrent_sessions() {
        let dir = std::env::temp_dir().join("rim_cli_test_serve");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rimc");
        let path_str = path.to_str().unwrap();
        simulate(&args(&[
            "simulate",
            path_str,
            "--distance",
            "0.5",
            "--rate",
            "100",
            "--seed",
            "5",
        ]))
        .unwrap();
        serve(&args(&[
            "serve",
            path_str,
            "--sessions",
            "3",
            "--loss",
            "iid:0.05",
            "--trace-every",
            "1",
            "--metrics-every",
            "10",
        ]))
        .expect("self-drive serves cleanly");
        // Missing capture and bad loss specs surface as errors.
        assert!(serve(&args(&["serve"])).is_err());
        let err = serve(&args(&["serve", path_str, "--loss", "burst"])).expect_err("bad loss spec");
        assert!(err.contains("loss"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
