//! Substrate micro-benchmarks: channel synthesis and CSI conditioning.

use criterion::{criterion_group, criterion_main, Criterion};
use rim_channel::cfr::synthesize_cfr;
use rim_channel::{ChannelSimulator, SubcarrierLayout};
use rim_csi::sanitize::{sanitize_linear_phase, sanitize_matched_delay};
use rim_dsp::complex::Complex64;
use rim_dsp::fft::fft;
use rim_dsp::geom::Point2;
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let sim = ChannelSimulator::open_lab(7);
    let sampler = sim.sampler();
    c.bench_function("channel_cfr_open_lab", |b| {
        b.iter(|| sampler.cfr(0, black_box(Point2::new(0.5, 2.0)), 0.0))
    });

    let layout = SubcarrierLayout::ht40_5ghz();
    let rays: Vec<rim_channel::Ray> = (0..150)
        .map(|k| rim_channel::Ray {
            delay_s: 20e-9 + k as f64 * 1e-9,
            amp: Complex64::from_polar(0.1, k as f64),
        })
        .collect();
    c.bench_function("synthesize_cfr_150rays", |b| {
        b.iter(|| synthesize_cfr(black_box(&rays), &layout))
    });

    let indices: Vec<i32> = layout.indices.clone();
    let cfr = sampler.cfr(0, Point2::new(0.5, 2.0), 0.0);
    c.bench_function("sanitize_matched_delay_114sc", |b| {
        b.iter(|| {
            let mut v = cfr.clone();
            sanitize_matched_delay(&mut v, &indices);
            v
        })
    });
    c.bench_function("sanitize_linear_fit_114sc", |b| {
        b.iter(|| {
            let mut v = cfr.clone();
            sanitize_linear_phase(&mut v, &indices);
            v
        })
    });

    c.bench_function("fft_1024", |b| {
        let x: Vec<Complex64> = (0..1024)
            .map(|k| Complex64::from_polar(1.0, k as f64 * 0.1))
            .collect();
        b.iter(|| fft(black_box(&x)))
    });
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
