//! Micro-benchmarks of the TRRS primitives (paper §6.2.9: "the main
//! computation burden lies in the calculation of TRRS").

use criterion::{criterion_group, criterion_main, Criterion};
use rim_core::trrs::{trrs_cfr, trrs_massive, trrs_norm, NormSnapshot};
use rim_csi::frame::CsiSnapshot;
use rim_dsp::complex::Complex64;
use std::hint::black_box;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn cfr(seed: u64, n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|k| {
            let x = (mix(seed.wrapping_mul(0x9E3779B9).wrapping_add(k as u64)) >> 12) as f64
                / (1u64 << 52) as f64;
            Complex64::from_polar(0.5 + x, x * std::f64::consts::TAU)
        })
        .collect()
}

fn snapshot(seed: u64) -> CsiSnapshot {
    CsiSnapshot {
        per_tx: (0..3).map(|t| cfr(seed + t as u64, 114)).collect(),
    }
}

fn bench_trrs(c: &mut Criterion) {
    let h1 = cfr(1, 114);
    let h2 = cfr(2, 114);
    c.bench_function("trrs_cfr_114sc", |b| {
        b.iter(|| trrs_cfr(black_box(&h1), black_box(&h2)))
    });

    let a = NormSnapshot::from_snapshot(&snapshot(1));
    let bb = NormSnapshot::from_snapshot(&snapshot(2));
    c.bench_function("trrs_norm_3tx_114sc", |b| {
        b.iter(|| trrs_norm(black_box(&a), black_box(&bb)))
    });

    let series_a: Vec<NormSnapshot> = (0..100)
        .map(|k| NormSnapshot::from_snapshot(&snapshot(k)))
        .collect();
    let series_b: Vec<NormSnapshot> = (100..200)
        .map(|k| NormSnapshot::from_snapshot(&snapshot(k)))
        .collect();
    c.bench_function("trrs_massive_v30", |b| {
        b.iter(|| trrs_massive(black_box(&series_a), black_box(&series_b), 50, 50, 30))
    });
}

criterion_group!(benches, bench_trrs);
criterion_main!(benches);
