//! Micro-benchmarks of alignment-matrix construction and DP tracking —
//! the per-pair cost that dominates RIM's runtime (paper §6.2.9 reports
//! the C++ system at ~6 % of one i7 core in real time).

use criterion::{criterion_group, criterion_main, Criterion};
use rim_core::alignment::{base_cross_trrs, virtual_average};
use rim_core::tracking_dp::{track_peaks, DpConfig};
use rim_core::trrs::NormSnapshot;
use rim_csi::frame::CsiSnapshot;
use rim_dsp::complex::Complex64;
use std::hint::black_box;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn series(seed: u64, len: usize) -> Vec<NormSnapshot> {
    (0..len)
        .map(|t| {
            NormSnapshot::from_snapshot(&CsiSnapshot {
                per_tx: (0..3)
                    .map(|tx| {
                        (0..114)
                            .map(|k| {
                                let x = (mix(seed
                                    .wrapping_mul(31)
                                    .wrapping_add((t * 1000 + tx * 200 + k) as u64))
                                    >> 12) as f64
                                    / (1u64 << 52) as f64;
                                Complex64::from_polar(1.0, x * std::f64::consts::TAU)
                            })
                            .collect()
                    })
                    .collect(),
            })
        })
        .collect()
}

fn bench_alignment(c: &mut Criterion) {
    // One second of CSI at 200 Hz, W = 26 (the standard cart window).
    let a = series(1, 200);
    let b = series(2, 200);
    c.bench_function("base_cross_trrs_1s_w26", |bch| {
        bch.iter(|| base_cross_trrs(black_box(&a), black_box(&b), 26))
    });

    let base = base_cross_trrs(&a, &b, 26);
    c.bench_function("virtual_average_v30", |bch| {
        bch.iter(|| virtual_average(black_box(&base), 30))
    });

    let g = virtual_average(&base, 30);
    c.bench_function("dp_track_1s_w26", |bch| {
        bch.iter(|| track_peaks(black_box(&g), DpConfig::default()))
    });
}

criterion_group!(benches, bench_alignment);
criterion_main!(benches);
