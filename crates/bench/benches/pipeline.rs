//! End-to-end pipeline cost: CPU time to analyze one second of 6-antenna
//! hexagonal-array CSI — the real-time feasibility claim of paper §6.2.9
//! (core modules ≈6 % of an i7 core, ~10 MB RAM).

use criterion::{criterion_group, criterion_main, Criterion};
use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::{Rim, RimConfig};
use rim_csi::{CsiRecorder, DeviceConfig, RecorderConfig};
use rim_dsp::geom::Point2;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let fs = 200.0;
    let sim = ChannelSimulator::open_lab(7);

    // 3-antenna linear array, 1 s of motion.
    let lin = ArrayGeometry::linear(3, HALF_WAVELENGTH);
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        1.0,
        1.0,
        fs,
        OrientationMode::FollowPath,
    );
    let dense_lin = CsiRecorder::new(
        &sim,
        DeviceConfig::single_nic(lin.offsets().to_vec()),
        RecorderConfig::default(),
    )
    .record(&traj)
    .interpolated()
    .unwrap();
    let rim_lin = Rim::new(
        lin,
        RimConfig::for_sample_rate(fs).with_min_speed(0.3, HALF_WAVELENGTH, fs),
    )
    .unwrap();
    c.bench_function("analyze_1s_linear3", |b| {
        b.iter(|| rim_lin.analyze(black_box(&dense_lin)).unwrap())
    });

    // 6-antenna hexagonal array, 1 s of motion.
    let hex = ArrayGeometry::hexagonal(HALF_WAVELENGTH);
    let dense_hex = CsiRecorder::new(
        &sim,
        DeviceConfig::dual_nic(hex.offsets().to_vec()),
        RecorderConfig::default(),
    )
    .record(&traj)
    .interpolated()
    .unwrap();
    let rim_hex = Rim::new(
        hex,
        RimConfig::for_sample_rate(fs).with_min_speed(0.3, HALF_WAVELENGTH, fs),
    )
    .unwrap();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.bench_function("analyze_1s_hexagonal6", |b| {
        b.iter(|| rim_hex.analyze(black_box(&dense_hex)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
