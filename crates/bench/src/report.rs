//! Experiment reporting: aligned text tables with paper-vs-measured rows.

use rim_dsp::stats::{max, mean, median, quantile, Ecdf};

/// A reproduced figure/table.
#[derive(Debug, Clone)]
pub struct Report {
    /// Figure identifier, e.g. "Fig. 11".
    pub figure: String,
    /// Short title.
    pub title: String,
    /// What the paper reports for this figure.
    pub paper_claim: String,
    /// Data rows: (label, value-string).
    pub rows: Vec<(String, String)>,
    /// Free-form notes (substitutions, caveats).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(figure: &str, title: &str, paper_claim: &str) -> Self {
        Self {
            figure: figure.to_string(),
            title: title.to_string(),
            paper_claim: paper_claim.to_string(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a data row.
    pub fn row(&mut self, label: impl Into<String>, value: impl Into<String>) {
        self.rows.push((label.into(), value.into()));
    }

    /// Adds a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the report as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.figure, self.title));
        out.push_str(&format!("   paper: {}\n", self.paper_claim));
        let width = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in &self.rows {
            out.push_str(&format!("   {label:<width$} : {value}\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("   note: {n}\n"));
        }
        out
    }

    /// Prints the report to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders as a Markdown section (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.figure, self.title));
        out.push_str(&format!("*Paper:* {}\n\n", self.paper_claim));
        out.push_str("| quantity | measured |\n|---|---|\n");
        for (label, value) in &self.rows {
            out.push_str(&format!("| {label} | {value} |\n"));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out.push('\n');
        out
    }
}

/// Summary statistics of an error sample, formatted for report rows.
#[derive(Debug, Clone, Copy)]
pub struct ErrorStats {
    /// Median error.
    pub median: f64,
    /// Mean error.
    pub mean: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl ErrorStats {
    /// Computes stats over a sample (NaNs dropped).
    pub fn of(errors: &[f64]) -> Self {
        let clean: Vec<f64> = errors.iter().copied().filter(|v| v.is_finite()).collect();
        Self {
            median: median(&clean),
            mean: mean(&clean),
            p90: quantile(&clean, 0.9),
            max: max(&clean),
            n: clean.len(),
        }
    }

    /// Formats in centimetres.
    pub fn fmt_cm(&self) -> String {
        format!(
            "median {:.1} cm, mean {:.1} cm, 90% {:.1} cm, max {:.1} cm (n={})",
            self.median * 100.0,
            self.mean * 100.0,
            self.p90 * 100.0,
            self.max * 100.0,
            self.n
        )
    }

    /// Formats in degrees (input radians).
    pub fn fmt_deg(&self) -> String {
        format!(
            "median {:.1}°, mean {:.1}°, 90% {:.1}°, max {:.1}° (n={})",
            self.median.to_degrees(),
            self.mean.to_degrees(),
            self.p90.to_degrees(),
            self.max.to_degrees(),
            self.n
        )
    }
}

/// Formats a CDF as compact `P(x ≤ v)` milestones for a report row.
pub fn cdf_row(errors_m: &[f64], unit_scale: f64, unit: &str) -> String {
    let e = Ecdf::new(errors_m);
    if e.is_empty() {
        return String::from("(no data)");
    }
    let qs = [0.25, 0.5, 0.75, 0.9, 1.0];
    qs.iter()
        .map(|&q| format!("{:.0}%≤{:.1}{unit}", q * 100.0, e.value_at(q) * unit_scale))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_rows_and_notes() {
        let mut r = Report::new("Fig. X", "demo", "something");
        r.row("alpha", "1");
        r.row("beta-longer", "2");
        r.note("a note");
        let text = r.render();
        assert!(text.contains("Fig. X"));
        assert!(text.contains("alpha       : 1"));
        assert!(text.contains("note: a note"));
        let md = r.render_markdown();
        assert!(md.contains("| alpha | 1 |"));
    }

    #[test]
    fn error_stats_drop_nan() {
        let s = ErrorStats::of(&[0.01, 0.03, f64::NAN, 0.02]);
        assert_eq!(s.n, 3);
        assert!((s.median - 0.02).abs() < 1e-12);
        assert!(s.fmt_cm().contains("median 2.0 cm"));
    }

    #[test]
    fn cdf_row_formats() {
        let row = cdf_row(&[0.01, 0.02, 0.03, 0.04], 100.0, "cm");
        assert!(row.contains("50%≤"), "{row}");
        assert_eq!(cdf_row(&[], 1.0, "m"), "(no data)");
    }
}
