//! Shared experiment environments and plumbing: simulators, devices, and
//! the record→analyze loop all figures use.

use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_channel::trajectory::Trajectory;
use rim_channel::ChannelSimulator;
use rim_core::{MotionEstimate, Rim, RimConfig};
use rim_csi::recorder::DenseCsi;
use rim_csi::{CsiRecorder, DeviceConfig, HardwareProfile, LossModel, RecorderConfig};
use rim_dsp::geom::Point2;

/// The standard CSI sample rate of the paper's prototype.
pub const SAMPLE_RATE: f64 = 200.0;

/// The default NIC antenna spacing (λ/2 at 5.8 GHz, §5).
pub const SPACING: f64 = HALF_WAVELENGTH;

/// The 3-antenna COTS linear array.
pub fn linear_array() -> ArrayGeometry {
    ArrayGeometry::linear(3, SPACING)
}

/// The 6-element hexagonal array of the prototype (Fig. 2).
pub fn hexagonal_array() -> ArrayGeometry {
    ArrayGeometry::hexagonal(SPACING)
}

/// The L-shaped pointer array (§6.3.2).
pub fn l_array() -> ArrayGeometry {
    ArrayGeometry::l_shape(SPACING)
}

/// Device configuration matching a geometry's NIC grouping.
pub fn device_for(geometry: &ArrayGeometry) -> DeviceConfig {
    if geometry.nic_groups().len() == 2 {
        DeviceConfig::dual_nic(geometry.offsets().to_vec())
    } else {
        DeviceConfig::single_nic(geometry.offsets().to_vec())
    }
}

/// RIM configuration used across figures: lag window sized for speeds down
/// to `min_speed`.
pub fn rim_config(sample_rate_hz: f64, min_speed: f64) -> RimConfig {
    RimConfig::for_sample_rate(sample_rate_hz).with_min_speed(min_speed, SPACING, sample_rate_hz)
}

/// Records a trajectory (optionally with loss / a custom profile) and
/// returns the interpolated dense CSI.
pub fn record(
    sim: &ChannelSimulator,
    geometry: &ArrayGeometry,
    traj: &Trajectory,
    seed: u64,
    loss: LossModel,
    profile: Option<HardwareProfile>,
) -> DenseCsi {
    let mut device = device_for(geometry).with_loss(loss);
    if let Some(p) = profile {
        device = device.with_profile(p);
    }
    CsiRecorder::new(
        sim,
        device,
        RecorderConfig {
            sanitize: true,
            seed,
        },
    )
    .record(traj)
    .interpolated()
    .expect("recording interpolable")
}

/// Records and analyzes in one step with default hardware.
pub fn run_rim(
    sim: &ChannelSimulator,
    geometry: &ArrayGeometry,
    traj: &Trajectory,
    config: RimConfig,
    seed: u64,
) -> MotionEstimate {
    let dense = record(sim, geometry, traj, seed, LossModel::None, None);
    Rim::new(geometry.clone(), config)
        .unwrap()
        .analyze(&dense)
        .unwrap()
}

/// Deterministic per-trace start points inside the office open area.
pub fn office_start(k: usize) -> Point2 {
    // Spread over the open band between the corridors.
    let xs = [5.0, 9.0, 13.0, 21.0, 25.0, 29.0, 7.0, 23.0];
    let ys = [9.5, 13.0, 17.5, 10.5, 16.5, 12.0, 15.0, 18.0];
    Point2::new(xs[k % xs.len()], ys[(k / xs.len() + k) % ys.len()])
}

/// Deterministic open-lab start points.
pub fn lab_start(k: usize) -> Point2 {
    let xs = [-2.0, -1.0, 0.0, 1.0, 2.0, -1.5, 0.5, 1.5];
    let ys = [1.0, 2.0, 3.0, 1.5, 2.5, 3.5, 0.5, 2.8];
    Point2::new(xs[k % xs.len()], ys[(k * 3 + 1) % ys.len()])
}
