//! # rim-bench
//!
//! The experiment harness reproducing the RIM paper's evaluation: one
//! module (and one binary) per figure of §6, shared workload builders, and
//! text reporting of paper-vs-measured results. Criterion micro-benchmarks
//! (§6.2.9 system complexity) live under `benches/`.
//!
//! Run a single figure:
//! ```sh
//! cargo run --release -p rim-bench --bin fig11_distance_accuracy
//! ```
//! or everything (writes the EXPERIMENTS.md data):
//! ```sh
//! cargo run --release -p rim-bench --bin all_figures
//! ```
//! Set `RIM_FAST=1` to run reduced workloads.

#![forbid(unsafe_code)]

pub mod env;
pub mod figs;
pub mod fusion;
pub mod kernel;
pub mod latency;
pub mod obs;
pub mod report;
pub mod scenarios;
pub mod serve;

/// True when the `RIM_FAST` environment variable asks for reduced
/// workloads.
pub fn fast_mode() -> bool {
    std::env::var_os("RIM_FAST").is_some()
}
