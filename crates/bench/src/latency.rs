//! The streaming-latency benchmark behind `BENCH_latency.json`: batch
//! flushes vs. the incremental alignment engine on one long walk.

use crate::env;
use rim_channel::trajectory::{dwell, line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::stream::{RimStream, StreamEvent};
use rim_core::RimConfig;
use rim_csi::{CsiRecorder, RecorderConfig};
use rim_dsp::geom::Point2;

/// Streams one long walk sample-by-sample twice — batch flushes vs. the
/// incremental alignment engine — timing every `ingest` call, and writes
/// the per-sample latency tails plus the flush-spike comparison to
/// `BENCH_latency.json`. The partial flushes every `max_open` seconds are
/// the spike the incremental column cache is built to flatten: with the
/// cache the flush reuses the online columns instead of recomputing the
/// alignment matrix from scratch, while mid-motion `Provisional` events
/// keep the caller updated between flushes.
pub fn write_latency_bench(fast: bool) {
    let sim = ChannelSimulator::open_lab(7);
    let geo = env::linear_array();
    let fs = 100.0;
    let length_m = if fast { 8.0 } else { 30.0 };
    let mut traj = line(
        Point2::new(-4.0, 2.0),
        0.0,
        length_m,
        1.0,
        fs,
        OrientationMode::Fixed(0.0),
    );
    let end = traj.pose(traj.len() - 1);
    traj.extend(&dwell(end.pos, end.orientation, 0.75, fs));
    let dense = CsiRecorder::new(
        &sim,
        env::device_for(&geo),
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record(&traj)
    .interpolated()
    .expect("recording interpolable");
    let n = dense.n_samples();

    let base_config = RimConfig::for_sample_rate(fs).with_min_speed(0.3, env::SPACING, fs);
    let provisional_every = base_config.provisional_every;
    // Per-sample latencies plus, separately, the latencies of the ingest
    // calls that flushed a segment — the spike the cache flattens.
    let run = |incremental: bool| -> (Vec<f64>, Vec<f64>, usize, usize) {
        let mut config = base_config.clone();
        config.incremental = incremental;
        if !incremental {
            config.provisional_every = 0;
        }
        let mut stream = RimStream::new(geo.clone(), config).expect("valid config");
        let mut lat_us = Vec::with_capacity(n);
        let mut flush_us = Vec::new();
        let mut provisionals = 0usize;
        let mut segments = 0usize;
        for i in 0..n {
            let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
            let t0 = std::time::Instant::now();
            let events = stream.ingest(snaps).expect("matching antenna count");
            let us = t0.elapsed().as_secs_f64() * 1e6;
            lat_us.push(us);
            let mut flushed = false;
            for e in &events {
                match e {
                    StreamEvent::Provisional { .. } => provisionals += 1,
                    StreamEvent::Segment(_) => {
                        segments += 1;
                        flushed = true;
                    }
                    _ => {}
                }
            }
            if flushed {
                flush_us.push(us);
            }
        }
        segments += stream
            .finish()
            .iter()
            .filter(|e| matches!(e, StreamEvent::Segment(_)))
            .count();
        (lat_us, flush_us, provisionals, segments)
    };

    let mut entries = Vec::new();
    let mut spikes = [0.0f64; 2];
    for (slot, incremental) in [(0usize, false), (1usize, true)] {
        let (mut lat, mut flush, provisionals, segments) = run(incremental);
        lat.sort_by(f64::total_cmp);
        flush.sort_by(f64::total_cmp);
        let pct = |v: &[f64], p: f64| -> f64 {
            if v.is_empty() {
                0.0
            } else {
                v[(((v.len() - 1) as f64) * p).round() as usize]
            }
        };
        // The systematic flush cost is the *median* flush-sample latency:
        // the max of a handful of multi-ms calls is dominated by scheduler
        // preemption noise on a busy host, not by the pipeline.
        let spike_us = pct(&flush, 0.50);
        let max_us = lat.last().copied().unwrap_or(0.0);
        spikes[slot] = spike_us;
        let mode = if incremental { "incremental" } else { "batch" };
        entries.push(format!(
            concat!(
                "    {{\"mode\": \"{}\", \"p50_us\": {:.1}, \"p99_us\": {:.1}, ",
                "\"flush_spike_us\": {:.1}, \"max_us\": {:.1}, ",
                "\"flushes\": {}, \"provisionals\": {}, \"segments\": {}}}"
            ),
            mode,
            pct(&lat, 0.50),
            pct(&lat, 0.99),
            spike_us,
            max_us,
            flush.len(),
            provisionals,
            segments
        ));
        eprintln!(
            "[lat] {mode}: p50 {:.0} µs, p99 {:.0} µs, flush spike {:.0} µs \
             (median of {} flushes, max {:.0} µs), {provisionals} provisionals",
            pct(&lat, 0.50),
            pct(&lat, 0.99),
            spike_us,
            flush.len(),
            max_us
        );
    }
    let reduction = if spikes[1] > 0.0 {
        spikes[0] / spikes[1]
    } else {
        0.0
    };
    eprintln!("[lat] flush-spike reduction: {reduction:.1}x");
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"latency\",\n",
            "  \"trace\": \"open_lab line {length} m @ {fs} Hz\",\n",
            "  \"samples\": {samples},\n",
            "  \"provisional_every\": {pe},\n",
            "  \"flush_spike_reduction\": {red:.2},\n",
            "  \"runs\": [\n{runs}\n  ]\n}}\n"
        ),
        length = length_m,
        fs = fs,
        samples = n,
        pe = provisional_every,
        red = reduction,
        runs = entries.join(",\n")
    );
    match std::fs::write("BENCH_latency.json", json) {
        Ok(()) => eprintln!("[lat] wrote BENCH_latency.json"),
        Err(e) => eprintln!("[lat] could not write BENCH_latency.json: {e}"),
    }
}
