//! The observability-overhead benchmark behind `BENCH_obs.json`: the
//! per-sample cost of end-to-end tracing, and the latency-attribution
//! breakdown of an 8-session loopback serve run.

use crate::env;
use rim_channel::trajectory::{dwell, line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::stream::RimStream;
use rim_csi::{CsiRecorder, RecorderConfig};
use rim_dsp::geom::Point2;
use rim_obs::{ActiveTrace, TraceId};
use rim_serve::{Admit, Client, ServeConfig, Server, SessionManager};
use std::sync::Arc;

/// Spans reported in the attribution breakdown, in pipeline order.
const ATTRIBUTION_SPANS: [&str; 7] = [
    rim_obs::attribution_metric::ADMISSION_US,
    rim_obs::attribution_metric::QUEUE_WAIT_US,
    rim_obs::attribution_metric::BATCH_SCHEDULE_US,
    rim_obs::attribution_metric::COMPUTE_US,
    rim_obs::attribution_metric::FLUSH_US,
    rim_obs::attribution_metric::WIRE_US,
    rim_obs::attribution_metric::TOTAL_US,
];

/// Measures the tracing overhead on per-sample ingest latency (every
/// sample traced vs. no tracing, same capture, p50 of the per-call wall
/// time) and decomposes ingest→estimate latency for an 8-session
/// loopback serve run with `trace_sample_every = 1`. Writes both to
/// `BENCH_obs.json`. Tracing is purely observational, so the overhead
/// column is the full cost of the feature; the acceptance bar is ≤5 %
/// on p50.
pub fn write_obs_bench(fast: bool) {
    let sim = ChannelSimulator::open_lab(7);
    let geo = env::linear_array();
    let fs = env::SAMPLE_RATE;
    let length_m = if fast { 2.0 } else { 6.0 };
    let mut traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        length_m,
        1.0,
        fs,
        OrientationMode::FollowPath,
    );
    let end = traj.pose(traj.len() - 1);
    traj.extend(&dwell(end.pos, end.orientation, 0.75, fs));
    let recording = CsiRecorder::new(
        &sim,
        env::device_for(&geo),
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record(&traj);
    let dense = recording.interpolated().expect("recording interpolable");
    let n = dense.n_samples();

    // Per-sample overhead: stream the capture with a fresh ActiveTrace
    // attached to every ingest vs. untraced, timing each call. The p50
    // is the steady-state cost; reps guard against a noisy run.
    let run = |traced: bool| -> f64 {
        let mut stream =
            RimStream::new(geo.clone(), env::rim_config(fs, 0.3)).expect("valid config");
        let mut lat_us = Vec::with_capacity(n);
        for i in 0..n {
            let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
            let t0 = std::time::Instant::now();
            if traced {
                let mut trace = ActiveTrace::new(TraceId(i as u64), 0, i as u64);
                stream
                    .session()
                    .trace(&mut trace)
                    .ingest(snaps)
                    .expect("matching antenna count");
                let _ = trace.finish();
            } else {
                stream
                    .session()
                    .ingest(snaps)
                    .expect("matching antenna count");
            }
            lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        stream.finish();
        lat_us.sort_by(f64::total_cmp);
        lat_us[(lat_us.len() - 1) / 2]
    };
    let reps = if fast { 2 } else { 3 };
    let mut p50_off = f64::INFINITY;
    let mut p50_on = f64::INFINITY;
    for _ in 0..reps {
        p50_off = p50_off.min(run(false));
        p50_on = p50_on.min(run(true));
    }
    let overhead_pct = if p50_off > 0.0 {
        (p50_on - p50_off) / p50_off * 100.0
    } else {
        0.0
    };
    eprintln!(
        "[obs] tracing overhead: p50 {p50_off:.1} µs untraced vs {p50_on:.1} µs traced \
         ({overhead_pct:+.2} %)"
    );

    // Attribution: an 8-session loopback run with every admitted sample
    // traced; the manager report's latency_attribution stage decomposes
    // ingest→estimate into the span taxonomy.
    let sessions = 8usize;
    let samples = rim_csi::synced_from_recording(&recording);
    let per_session = samples.len();
    let config = env::rim_config(fs, 0.3).with_trace_sampling(1);
    let manager = Arc::new(
        SessionManager::new(geo.clone(), config, ServeConfig::default()).expect("valid config"),
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&manager)).expect("bind loopback");
    let addr = server.local_addr();
    let handles: Vec<_> = (0..sessions as u64)
        .map(|k| {
            let samples = samples.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for sample in samples {
                    let (admit, _) = client.ingest_blocking(k, sample).expect("ingest");
                    assert_eq!(admit, Admit::Accepted, "session {k} rejected");
                }
                client.finish(k).expect("finish");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }
    let report = manager.report();
    server.shutdown();

    let mut span_entries = Vec::new();
    if let Some(attr) = report.stage(rim_obs::stage::LATENCY_ATTRIBUTION) {
        for name in ATTRIBUTION_SPANS {
            if let Some(d) = attr.distributions.iter().find(|d| d.name == name) {
                span_entries.push(format!(
                    concat!(
                        "      {{\"name\": \"{}\", \"count\": {}, ",
                        "\"p50_us\": {:.1}, \"p99_us\": {:.1}}}"
                    ),
                    d.name, d.count, d.p50, d.p99
                ));
                eprintln!(
                    "[obs] {}: n={} p50 {:.1} µs, p99 {:.1} µs",
                    d.name, d.count, d.p50, d.p99
                );
            }
        }
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"obs\",\n",
            "  \"trace\": \"open_lab line {length} m @ {fs} Hz\",\n",
            "  \"samples\": {samples},\n",
            "  \"overhead\": {{\"p50_untraced_us\": {off:.2}, \"p50_traced_us\": {on:.2}, ",
            "\"overhead_pct\": {pct:.2}}},\n",
            "  \"attribution\": {{\n",
            "    \"sessions\": {sessions},\n",
            "    \"samples_per_session\": {per_session},\n",
            "    \"trace_sample_every\": 1,\n",
            "    \"spans\": [\n{spans}\n    ]\n  }}\n}}\n"
        ),
        length = length_m,
        fs = fs,
        samples = n,
        off = p50_off,
        on = p50_on,
        pct = overhead_pct,
        sessions = sessions,
        per_session = per_session,
        spans = span_entries.join(",\n")
    );
    match std::fs::write("BENCH_obs.json", json) {
        Ok(()) => eprintln!("[obs] wrote BENCH_obs.json"),
        Err(e) => eprintln!("[obs] could not write BENCH_obs.json: {e}"),
    }
}
