//! Binary wrapper for `rim_bench::figs::fig16_sampling_rate`.
fn main() {
    rim_bench::figs::fig16_sampling_rate::run(rim_bench::fast_mode()).print();
}
