//! Binary wrapper for `rim_bench::figs::fig04_trrs_resolution`.
fn main() {
    rim_bench::figs::fig04_trrs_resolution::run(rim_bench::fast_mode()).print();
}
