//! Binary wrapper for `rim_bench::figs::fig07_movement_detection`.
fn main() {
    rim_bench::figs::fig07_movement_detection::run(rim_bench::fast_mode()).print();
}
