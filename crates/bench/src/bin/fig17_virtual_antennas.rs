//! Binary wrapper for `rim_bench::figs::fig17_virtual_antennas`.
fn main() {
    rim_bench::figs::fig17_virtual_antennas::run(rim_bench::fast_mode()).print();
}
