//! Binary wrapper for `rim_bench::figs::fig10_floorplan` — also prints the
//! ASCII floor map.
fn main() {
    rim_bench::figs::fig10_floorplan::run(rim_bench::fast_mode()).print();
    println!("{}", rim_bench::figs::fig10_floorplan::render_map(95, 34));
}
