//! Binary wrapper for `rim_bench::figs::fig20_indoor_tracking`.
fn main() {
    rim_bench::figs::fig20_indoor_tracking::run(rim_bench::fast_mode()).print();
}
