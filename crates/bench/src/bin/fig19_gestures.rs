//! Binary wrapper for `rim_bench::figs::fig19_gestures`.
fn main() {
    rim_bench::figs::fig19_gestures::run(rim_bench::fast_mode()).print();
}
