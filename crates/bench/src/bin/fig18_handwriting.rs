//! Binary wrapper for `rim_bench::figs::fig18_handwriting`.
fn main() {
    rim_bench::figs::fig18_handwriting::run(rim_bench::fast_mode()).print();
}
