//! Binary wrapper for `rim_bench::latency` (writes `BENCH_latency.json`).
fn main() {
    rim_bench::latency::write_latency_bench(rim_bench::fast_mode());
}
