//! Standalone scenario-zoo bench: the seven-motion corpus crossed with
//! the 2/3/4-antenna × 20/40/80 MHz × mixed-rate device matrix, with
//! both the batch RIM pipeline and the RIM×IMU fusion engine run over
//! every cell.
//!
//! ```sh
//! cargo run --release -p rim-bench --bin scenarios
//! ```
//!
//! Writes `BENCH_scenarios.json` in the `rim-scenarios-bench/1` schema.
//! With `RIM_FAST=1` every device's sample rate is halved (the
//! trajectories and the device matrix are identical), which is the
//! configuration CI's scenarios lane runs.

fn main() {
    rim_bench::scenarios::write_scenarios_bench(rim_bench::fast_mode());
}
