//! Standalone serve bench: the latency-vs-sessions sweep plus the
//! high-concurrency soak, without running every paper figure first.
//!
//! ```sh
//! cargo run --release -p rim-bench --bin serve_soak -- --sessions 128
//! ```
//!
//! `--sessions N` sizes the soak point (default 1000, or 128 with
//! `RIM_FAST=1` — the scaled-down configuration CI's soak-smoke lane
//! runs). Writes `BENCH_serve.json` in the `rim-serve-bench/2` schema.

fn main() {
    let fast = rim_bench::fast_mode();
    let mut soak_sessions = if fast { 128 } else { 1000 };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sessions" => {
                let value = args.next().unwrap_or_default();
                soak_sessions = value
                    .parse()
                    .unwrap_or_else(|_| panic!("--sessions wants a count, got {value:?}"));
            }
            other => panic!("unknown argument {other:?} (valid: --sessions N)"),
        }
    }
    assert!(soak_sessions > 0, "--sessions must be positive");
    rim_bench::serve::write_serve_bench(fast, soak_sessions);
}
