//! Binary wrapper for `rim_bench::figs::limitation_swinging`.
fn main() {
    rim_bench::figs::limitation_swinging::run(rim_bench::fast_mode()).print();
}
