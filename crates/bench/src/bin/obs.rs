//! Binary wrapper for `rim_bench::obs` (writes `BENCH_obs.json`).
fn main() {
    rim_bench::obs::write_obs_bench(rim_bench::fast_mode());
}
