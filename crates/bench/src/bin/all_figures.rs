//! Runs every reproduced figure in order and prints the reports; with
//! `--markdown`, emits the Markdown blocks EXPERIMENTS.md embeds.
//! Afterwards it profiles one representative pipeline run and writes the
//! stage-level observability report to `BENCH_pipeline.json`.
use rim_bench::env;
use rim_bench::figs;
use rim_bench::report::Report;
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::{CsiRecorder, RecorderConfig};
use rim_dsp::geom::Point2;

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    let fast = rim_bench::fast_mode();
    type FigureRun = (&'static str, fn(bool) -> Report);
    let runs: Vec<FigureRun> = vec![
        ("fig04", figs::fig04_trrs_resolution::run),
        ("fig10", figs::fig10_floorplan::run),
        ("fig05", figs::fig05_alignment_matrix::run),
        ("fig06", figs::fig06_deviated_retracing::run),
        ("fig07", figs::fig07_movement_detection::run),
        ("fig08", figs::fig08_peak_tracking::run),
        ("fig11", figs::fig11_distance_accuracy::run),
        ("fig12", figs::fig12_heading_accuracy::run),
        ("fig13", figs::fig13_rotation_accuracy::run),
        ("fig14", figs::fig14_ap_location::run),
        ("fig15", figs::fig15_accumulation::run),
        ("fig16", figs::fig16_sampling_rate::run),
        ("fig17", figs::fig17_virtual_antennas::run),
        ("fig18", figs::fig18_handwriting::run),
        ("fig19", figs::fig19_gestures::run),
        ("fig20", figs::fig20_indoor_tracking::run),
        ("fig21", figs::fig21_sensor_fusion::run),
        ("dyn", figs::robustness_dynamics::run),
        ("fault", figs::fault_tolerance::run),
        ("limitation", figs::limitation_swinging::run),
        ("ablations", figs::ablations::run),
    ];
    for (name, f) in runs {
        let t0 = std::time::Instant::now();
        let report = f(fast);
        if markdown {
            print!("{}", report.render_markdown());
        } else {
            report.print();
        }
        eprintln!("[{name}] done in {:.1?}", t0.elapsed());
    }
    write_pipeline_profile();
    write_parallel_sweep(fast);
    rim_bench::serve::write_serve_bench(fast, if fast { 128 } else { 1000 });
    rim_bench::latency::write_latency_bench(fast);
    rim_bench::kernel::write_kernel_bench(fast);
    rim_bench::obs::write_obs_bench(fast);
}

/// Profiles one representative pipeline run (2 m lab push at the standard
/// sample rate) with the rim-obs recorder — acquisition through reckoning
/// — and writes the run report to `BENCH_pipeline.json`.
fn write_pipeline_profile() {
    let recorder = rim_obs::Recorder::new();
    let sim = ChannelSimulator::open_lab(7);
    let geo = env::linear_array();
    let fs = env::SAMPLE_RATE;
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        2.0,
        1.0,
        fs,
        OrientationMode::FollowPath,
    );
    let dense = CsiRecorder::new(
        &sim,
        env::device_for(&geo),
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record_probed(&traj, &recorder)
    .interpolated()
    .expect("recording interpolable");
    Rim::new(geo, env::rim_config(fs, 0.3))
        .expect("valid config")
        .session()
        .probe(&recorder)
        .analyze(&dense)
        .expect("analyzable recording");
    let json = recorder.report().to_json();
    match std::fs::write("BENCH_pipeline.json", json + "\n") {
        Ok(()) => eprintln!("[obs] wrote BENCH_pipeline.json"),
        Err(e) => eprintln!("[obs] could not write BENCH_pipeline.json: {e}"),
    }
}

/// Re-analyzes one fig11-style trace at several thread counts and writes
/// the throughput sweep to `BENCH_parallel.json`. Speedups are relative
/// to the 1-thread run on this machine; `hardware_threads` records how
/// much parallelism the host actually offered, so a 1-core CI box
/// reporting ~1× is expected rather than a regression.
fn write_parallel_sweep(fast: bool) {
    let sim = ChannelSimulator::open_lab(7);
    let geo = env::linear_array();
    let fs = env::SAMPLE_RATE;
    let length_m = if fast { 1.0 } else { 4.0 };
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        length_m,
        1.0,
        fs,
        OrientationMode::FollowPath,
    );
    let dense = CsiRecorder::new(
        &sim,
        env::device_for(&geo),
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record(&traj)
    .interpolated()
    .expect("recording interpolable");

    let hardware_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let reps = if fast { 1 } else { 3 };
    let reference = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
        .expect("valid config")
        .analyze(&dense)
        .expect("analyzable recording");

    let mut entries = Vec::new();
    let mut serial_ms = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let rim = Rim::new(geo.clone(), env::rim_config(fs, 0.3).with_threads(threads))
            .expect("valid config");
        let mut best_ms = f64::INFINITY;
        let mut estimate = None;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let e = rim.analyze(&dense).expect("analyzable recording");
            best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            estimate = Some(e);
        }
        let estimate = estimate.expect("at least one rep");
        let bit_identical = estimate.speed_mps.len() == reference.speed_mps.len()
            && estimate
                .speed_mps
                .iter()
                .zip(&reference.speed_mps)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if threads == 1 {
            serial_ms = best_ms;
        }
        entries.push(format!(
            concat!(
                "    {{\"threads\": {}, \"wall_ms\": {:.3}, ",
                "\"speedup_vs_serial\": {:.3}, \"bit_identical\": {}}}"
            ),
            threads,
            best_ms,
            serial_ms / best_ms,
            bit_identical
        ));
        eprintln!(
            "[par] threads={threads}: {best_ms:.1} ms ({:.2}x), bit_identical={bit_identical}",
            serial_ms / best_ms
        );
    }
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"parallel_sweep\",\n",
            "  \"trace\": \"open_lab line {length} m @ {fs} Hz\",\n",
            "  \"samples\": {samples},\n",
            "  \"hardware_threads\": {hw},\n",
            "  \"reps\": {reps},\n",
            "  \"runs\": [\n{runs}\n  ]\n}}\n"
        ),
        length = length_m,
        fs = fs,
        samples = dense.n_samples(),
        hw = hardware_threads,
        reps = reps,
        runs = entries.join(",\n")
    );
    match std::fs::write("BENCH_parallel.json", json) {
        Ok(()) => eprintln!("[par] wrote BENCH_parallel.json"),
        Err(e) => eprintln!("[par] could not write BENCH_parallel.json: {e}"),
    }
}
