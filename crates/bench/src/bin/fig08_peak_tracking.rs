//! Binary wrapper for `rim_bench::figs::fig08_peak_tracking`.
fn main() {
    rim_bench::figs::fig08_peak_tracking::run(rim_bench::fast_mode()).print();
}
