//! Binary wrapper for `rim_bench::figs::robustness_dynamics`.
fn main() {
    rim_bench::figs::robustness_dynamics::run(rim_bench::fast_mode()).print();
}
