//! Binary wrapper for `rim_bench::figs::ablations`.
fn main() {
    rim_bench::figs::ablations::run(rim_bench::fast_mode()).print();
}
