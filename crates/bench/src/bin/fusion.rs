//! Standalone fusion bench: RIM-only vs IMU-only vs RIM×IMU fused
//! tracking on a ~64 s stop-and-go walk with a mid-run 2 s CSI blackout.
//!
//! ```sh
//! cargo run --release -p rim-bench --bin fusion
//! ```
//!
//! Writes `BENCH_fusion.json` in the `rim-fusion-bench/1` schema. With
//! `RIM_FAST=1` the CSI/IMU sample rate is halved (the trajectory, its
//! ≥60 s duration, and the blackout are identical), which is the
//! configuration CI's fusion lane runs.

fn main() {
    rim_bench::fusion::write_fusion_bench(rim_bench::fast_mode());
}
