//! Binary wrapper for `rim_bench::figs::fig06_deviated_retracing`.
fn main() {
    rim_bench::figs::fig06_deviated_retracing::run(rim_bench::fast_mode()).print();
}
