//! Binary wrapper for `rim_bench::figs::fig14_ap_location`.
fn main() {
    rim_bench::figs::fig14_ap_location::run(rim_bench::fast_mode()).print();
}
