//! Binary wrapper for `rim_bench::figs::fig13_rotation_accuracy`.
fn main() {
    rim_bench::figs::fig13_rotation_accuracy::run(rim_bench::fast_mode()).print();
}
