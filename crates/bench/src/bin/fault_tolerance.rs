//! Binary wrapper for `rim_bench::figs::fault_tolerance`.
fn main() {
    rim_bench::figs::fault_tolerance::run(rim_bench::fast_mode()).print();
}
