//! Binary wrapper for `rim_bench::figs::fig21_sensor_fusion`.
fn main() {
    rim_bench::figs::fig21_sensor_fusion::run(rim_bench::fast_mode()).print();
}
