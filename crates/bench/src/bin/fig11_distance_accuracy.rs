//! Binary wrapper for `rim_bench::figs::fig11_distance_accuracy`.
fn main() {
    rim_bench::figs::fig11_distance_accuracy::run(rim_bench::fast_mode()).print();
}
