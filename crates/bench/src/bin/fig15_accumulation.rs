//! Binary wrapper for `rim_bench::figs::fig15_accumulation`.
fn main() {
    rim_bench::figs::fig15_accumulation::run(rim_bench::fast_mode()).print();
}
