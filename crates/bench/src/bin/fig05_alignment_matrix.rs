//! Binary wrapper for `rim_bench::figs::fig05_alignment_matrix` — also
//! renders the heatmap of one aligned group's matrix, the visual the
//! paper's Fig. 5 shows.
fn main() {
    let report = rim_bench::figs::fig05_alignment_matrix::run(rim_bench::fast_mode());
    report.print();
    if let Some(art) = rim_bench::figs::fig05_alignment_matrix::heatmap(rim_bench::fast_mode()) {
        println!(
            "
averaged alignment matrix of group (1v3, 4v6):
{art}"
        );
    }
}
