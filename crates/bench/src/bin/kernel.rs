//! Binary wrapper for `rim_bench::kernel` (writes `BENCH_kernel.json`).
fn main() {
    rim_bench::kernel::write_kernel_bench(rim_bench::fast_mode());
}
