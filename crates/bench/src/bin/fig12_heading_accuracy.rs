//! Binary wrapper for `rim_bench::figs::fig12_heading_accuracy`.
fn main() {
    rim_bench::figs::fig12_heading_accuracy::run(rim_bench::fast_mode()).print();
}
