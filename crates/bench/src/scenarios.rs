//! The scenario-zoo benchmark behind `BENCH_scenarios.json`: the
//! [`rim_channel::scenarios`] motion corpus crossed with a device
//! heterogeneity matrix (bandwidth × antenna count × sample rate), with
//! the full RIM batch pipeline *and* the RIM×IMU fusion engine run over
//! every cell.
//!
//! Axes:
//!
//! * **Motion** — the seven zoo workloads (walking, running,
//!   stop-and-go, stairs-like pauses, cart push, random shaking,
//!   rotation-while-translating) plus a straight `line` reference per
//!   device, which is the "open_lab line" every earlier bench ran.
//! * **Device** — three shapes spanning the COTS space: a 2-antenna
//!   HT20 (56-subcarrier) NIC at 100 Hz, the paper's 3-antenna HT40
//!   (114) prototype at 200 Hz, and a 4-antenna VHT80 (242) front end
//!   at 160 Hz.
//!
//! Per cell the bench reports accuracy (median and final tracking error
//! against ground truth) and latency (batch analysis wall time), plus
//! the fused-vs-RIM-only final errors from the streaming fusion run.
//! The regression gates (checked by the embedded test and CI's
//! `scenarios` lane): no cell panics, every non-shaking scenario the
//! device can physically resolve holds median error within 2× its
//! device's line baseline (with an absolute floor covering the
//! swinging-turn chord offset), and on the running gait the fused
//! error does not regress past RIM-only — the ZUPT-sustain arbitration
//! working end to end. A cell whose peak speed exceeds the device's
//! `spacing × fs / 2` ceiling reports ungated: that cell measures the
//! paper's Fig. 16 sampling-rate requirement, not a regression.

use crate::env;
use rim_array::ArrayGeometry;
use rim_channel::scenarios as zoo;
use rim_channel::trajectory::{line, OrientationMode, Trajectory};
use rim_channel::{ChannelSimulator, SubcarrierLayout};
use rim_core::{ImuSample, Rim, RimStream, StreamEvent};
use rim_csi::{synced_from_recording, CsiRecorder, RecorderConfig};
use rim_dsp::geom::{Point2, Vec2};
use rim_dsp::stats::{median, wrap_angle};
use rim_sensors::{ImuConfig, SimulatedImu};
use rim_tracking::Fuser;
use std::time::Instant;

/// Straight-line reference distance, metres — the "open_lab line" walk
/// the per-device baselines are measured on.
const BASELINE_DISTANCE_M: f64 = 6.0;

/// Non-shaking scenarios must hold median tracking error within this
/// factor of their device's line baseline.
const GATE_FACTOR: f64 = 2.0;

/// Absolute gate floor, metres. The line baseline can land in the
/// centimetres, where 2× baseline is below what the estimator can hold
/// on harder gaits; the floor covers the intrinsic chord-vs-arc offset
/// a swinging turn produces (RIM lays an arc out straight — the
/// paper's §7 open problem), which sits around 0.45 m on the zoo's
/// quarter-circle and is rate- and device-independent.
const GATE_FLOOR_M: f64 = 0.5;

/// Minimum antenna-crossing lag (in samples) a device must resolve at a
/// scenario's peak ground-truth speed for the accuracy gate to apply.
/// RIM measures speed as `spacing × fs / lag`; below 2 samples of lag
/// the quantisation error exceeds tens of percent and the cell measures
/// the sampling-rate limit of the paper's Fig. 16, not a regression.
const MIN_LAG_SAMPLES: f64 = 2.0;

/// One device shape of the heterogeneity matrix.
#[derive(Debug, Clone, Copy)]
pub struct DeviceSpec {
    /// Stable name used in `BENCH_scenarios.json`.
    pub name: &'static str,
    /// Receive antennas in the linear array.
    pub n_antennas: usize,
    /// Channel bandwidth, MHz (selects the subcarrier grid).
    pub bandwidth_mhz: u32,
    /// CSI/IMU sample rate, Hz (capped at 100 Hz in fast mode).
    pub sample_rate_hz: f64,
}

impl DeviceSpec {
    fn geometry(&self) -> ArrayGeometry {
        ArrayGeometry::linear(self.n_antennas, env::SPACING)
    }

    fn layout(&self) -> SubcarrierLayout {
        match self.bandwidth_mhz {
            20 => SubcarrierLayout::ht20_5ghz(),
            40 => SubcarrierLayout::ht40_5ghz(),
            80 => SubcarrierLayout::vht80_5ghz(),
            other => unreachable!("no layout for {other} MHz"),
        }
    }

    fn n_subcarriers(&self) -> usize {
        self.layout().n_subcarriers()
    }

    fn fs(&self, fast: bool) -> f64 {
        // Fast mode caps the rate instead of scaling it: halving would
        // change which scenarios the device can physically resolve
        // (speed ceiling = spacing × fs), and the gates should test the
        // same physics in CI as in the full run.
        if fast {
            self.sample_rate_hz.min(100.0)
        } else {
            self.sample_rate_hz
        }
    }

    /// Fastest ground-truth speed this device can track with at least
    /// [`MIN_LAG_SAMPLES`] of antenna-crossing lag (the paper's Fig. 16
    /// sampling-rate requirement).
    fn max_trackable_mps(&self, fast: bool) -> f64 {
        env::SPACING * self.fs(fast) / MIN_LAG_SAMPLES
    }
}

/// The three device shapes: 2/3/4 antennas × 20/40/80 MHz
/// (56/114/242 subcarriers) × mixed per-session sample rates.
pub fn devices() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec {
            name: "compact2",
            n_antennas: 2,
            bandwidth_mhz: 20,
            sample_rate_hz: 100.0,
        },
        DeviceSpec {
            name: "cots3",
            n_antennas: 3,
            bandwidth_mhz: 40,
            sample_rate_hz: 200.0,
        },
        DeviceSpec {
            name: "wide4",
            n_antennas: 4,
            bandwidth_mhz: 80,
            sample_rate_hz: 160.0,
        },
    ]
}

/// Measured outcome of one scenario × device cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Scenario name (`line` for the baseline reference).
    pub scenario: &'static str,
    /// Device name.
    pub device: &'static str,
    /// Trajectory duration, seconds.
    pub duration_s: f64,
    /// Ground-truth path length, metres.
    pub distance_m: f64,
    /// Median per-sample tracking error of the batch RIM estimate, m.
    pub median_m: f64,
    /// Final-position tracking error of the batch RIM estimate, m.
    pub final_m: f64,
    /// Batch analysis wall time, milliseconds.
    pub analysis_ms: f64,
    /// Final-position error of the fused (RIM×IMU) stream, m.
    pub fused_final_m: f64,
    /// Final-position error of event-level RIM-only dead reckoning, m.
    pub rim_only_final_m: f64,
    /// Peak ground-truth speed over the trajectory, m/s.
    pub peak_speed_mps: f64,
    /// Error gate this cell must hold (None for shaking, the baseline
    /// itself, and cells whose peak speed the device cannot resolve).
    pub gate_m: Option<f64>,
}

impl Cell {
    /// Whether the cell's median error holds its gate (vacuously true
    /// for ungated cells).
    pub fn within_gate(&self) -> bool {
        self.gate_m.is_none_or(|g| self.median_m <= g)
    }
}

/// Builds a cell's ground-truth trajectory. The baseline `line` is
/// built here; zoo names resolve through [`rim_channel::scenarios`].
fn trajectory_for(scenario: &zoo::ScenarioSpec, start: Point2, fs: f64) -> Trajectory {
    if scenario.name == "line" {
        line(
            start,
            0.0,
            BASELINE_DISTANCE_M,
            1.0,
            fs,
            OrientationMode::FollowPath,
        )
    } else {
        zoo::build(scenario.name, start, fs, scenario.default_seed)
            .expect("zoo scenario name is known")
    }
}

/// The per-device baseline pseudo-scenario.
const LINE: zoo::ScenarioSpec = zoo::ScenarioSpec {
    name: "line",
    summary: "6 m straight open_lab walk (the historical bench workload)",
    default_seed: 20,
};

/// Event-level dead reckoning from a plain RIM stream (same
/// construction as the fusion bench's RIM-only baseline).
struct RimDeadReckoner {
    position: Point2,
    orientation: f64,
}

impl RimDeadReckoner {
    fn absorb(&mut self, events: &[StreamEvent]) {
        for event in events {
            if let StreamEvent::Segment(seg) = event {
                self.orientation = wrap_angle(self.orientation + seg.rotation_rad);
                let dir = self.orientation + seg.heading_device.unwrap_or(0.0);
                self.position += Vec2::new(dir.cos(), dir.sin()) * seg.distance_m;
            }
        }
    }
}

/// Runs one scenario × device cell: batch RIM over the recorded CSI
/// (accuracy + latency), then the streaming fusion engine over the same
/// trajectory's CSI + IMU.
fn run_cell(scenario: &zoo::ScenarioSpec, device: &DeviceSpec, fast: bool, k: usize) -> Cell {
    let fs = device.fs(fast);
    let start = env::lab_start(k);
    let traj = trajectory_for(scenario, start, fs);
    let geo = device.geometry();
    let sim = ChannelSimulator::open_lab(scenario.default_seed).with_layout(device.layout());

    // One lossless recording feeds both pipelines: interpolated for the
    // batch analysis, raw for the streaming fusion run (ray-tracing the
    // wide grids dominates the cell's cost, so record once).
    let recording = CsiRecorder::new(
        &sim,
        env::device_for(&geo),
        RecorderConfig {
            sanitize: true,
            seed: scenario.default_seed,
        },
    )
    .record(&traj);

    // Batch pipeline: analyze (timed), integrate, compare.
    let dense = recording
        .interpolated()
        .expect("lossless recording interpolates");
    let rim = Rim::new(geo.clone(), env::rim_config(fs, 0.3)).expect("device geometry is valid");
    let t0 = Instant::now();
    let est = rim.analyze(&dense).expect("zoo cell analyzes cleanly");
    let analysis_ms = t0.elapsed().as_secs_f64() * 1e3;
    let track = est.trajectory(start, traj.pose(0).orientation);
    let n = track.len().min(traj.len());
    let errors: Vec<f64> = (0..n)
        .map(|i| track[i].distance(traj.pose(i).pos))
        .collect();
    let median_m = median(&errors);
    let final_m = track[n - 1].distance(traj.pose(n - 1).pos);

    // Streaming fusion over the same run: CSI through a RimStream
    // feeding the error-state filter, IMU sampled off the same ground
    // truth. Consumer-grade tuning as in the fusion bench; the ZUPT
    // window/sustain stay at their (gait-arbitrated) defaults.
    let samples = synced_from_recording(&recording);
    let imu = SimulatedImu::new(ImuConfig::consumer(), scenario.default_seed ^ 0xA5).sample(&traj);
    let fuser = Fuser::builder()
        .initial_position(start)
        .initial_heading(traj.pose(0).orientation)
        .rim_heading_noise(f64::INFINITY)
        .accel_noise(0.3)
        .build()
        .expect("fusion knobs are valid");
    let mut fused = fuser.stream(RimStream::new(geo.clone(), env::rim_config(fs, 0.3)).unwrap());
    let mut rim_only = RimStream::new(geo, env::rim_config(fs, 0.3)).unwrap();
    let mut reckoner = RimDeadReckoner {
        position: start,
        orientation: 0.0,
    };
    for (i, sample) in samples.iter().enumerate() {
        let batch = vec![ImuSample {
            t_us: (i as f64 / fs * 1e6) as u64,
            accel_body: imu.accel_body[i],
            gyro_z: imu.gyro_z[i],
            mag_orientation: Some(imu.mag_orientation[i]),
        }];
        fused.ingest(batch).expect("imu ingest never errors");
        fused
            .ingest(sample.clone())
            .expect("csi ingest never errors");
        reckoner.absorb(&rim_only.ingest(sample.clone()).expect("csi ingest"));
    }
    fused.finish();
    reckoner.absorb(&rim_only.finish());
    let truth_end = traj.pose(traj.len() - 1).pos;
    let peak_speed_mps = (1..traj.len())
        .map(|i| traj.pose(i).pos.distance(traj.pose(i - 1).pos) * fs)
        .fold(0.0, f64::max);

    Cell {
        scenario: scenario.name,
        device: device.name,
        duration_s: traj.duration(),
        distance_m: traj.total_distance(),
        median_m,
        final_m,
        analysis_ms,
        fused_final_m: fused.position().distance(truth_end),
        rim_only_final_m: reckoner.position.distance(truth_end),
        peak_speed_mps,
        gate_m: None,
    }
}

/// Runs the full matrix: per device, the line baseline first, then
/// every zoo motion gated against that baseline.
pub fn run_matrix(fast: bool) -> Vec<Cell> {
    let mut cells = Vec::new();
    for device in &devices() {
        let baseline = run_cell(&LINE, device, fast, 0);
        let gate = (GATE_FACTOR * baseline.median_m).max(GATE_FLOOR_M);
        eprintln!(
            "[scenarios] {}: baseline median {:.3} m (gate {:.3} m)",
            device.name, baseline.median_m, gate
        );
        cells.push(baseline);
        for (k, scenario) in zoo::ZOO.iter().enumerate() {
            let mut cell = run_cell(scenario, device, fast, k + 1);
            // Two exemptions, both physics rather than policy. Shaking
            // is in-place jitter: median error against a stationary
            // truth measures the simulator's noise floor, not tracking
            // accuracy. And a cell whose peak speed outruns the
            // device's `spacing × fs` ceiling measures Fig. 16's
            // sampling-rate requirement — the running gait does this by
            // design, on every COTS shape in the matrix.
            let resolvable = cell.peak_speed_mps <= device.max_trackable_mps(fast);
            if scenario.name != "shaking" && resolvable {
                cell.gate_m = Some(gate);
            }
            let note = if !cell.within_gate() {
                "  ** OVER GATE **".to_string()
            } else if scenario.name != "shaking" && !resolvable {
                format!(
                    "  (ungated: peak {:.2} m/s > trackable {:.2} m/s)",
                    cell.peak_speed_mps,
                    device.max_trackable_mps(fast),
                )
            } else {
                String::new()
            };
            eprintln!(
                "[scenarios] {} x {}: median {:.3} m, final {:.3} m, \
                 fused {:.3} m, rim-only {:.3} m, analyze {:.1} ms{}",
                cell.scenario,
                cell.device,
                cell.median_m,
                cell.final_m,
                cell.fused_final_m,
                cell.rim_only_final_m,
                cell.analysis_ms,
                note,
            );
            cells.push(cell);
        }
    }
    cells
}

/// Runs the matrix and writes `BENCH_scenarios.json` (schema
/// `rim-scenarios-bench/1`). `fast` caps every device's sample rate at
/// 100 Hz; the trajectories are identical in both modes.
pub fn write_scenarios_bench(fast: bool) {
    let cells = run_matrix(fast);
    let over: Vec<&Cell> = cells.iter().filter(|c| !c.within_gate()).collect();
    eprintln!(
        "[scenarios] {} cells ({} devices x {} motions + baselines), {} over gate",
        cells.len(),
        devices().len(),
        zoo::ZOO.len(),
        over.len(),
    );

    let device_rows = devices()
        .iter()
        .map(|d| {
            format!(
                "    {{\"name\": \"{}\", \"antennas\": {}, \"bandwidth_mhz\": {}, \
                 \"subcarriers\": {}, \"sample_rate_hz\": {:.0}, \
                 \"max_trackable_mps\": {:.3}}}",
                d.name,
                d.n_antennas,
                d.bandwidth_mhz,
                d.n_subcarriers(),
                d.fs(fast),
                d.max_trackable_mps(fast),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let cell_rows = cells
        .iter()
        .map(|c| {
            let gate = match c.gate_m {
                Some(g) => format!("{g:.3}"),
                None => String::from("null"),
            };
            format!(
                "    {{\"scenario\": \"{}\", \"device\": \"{}\", \
                 \"duration_s\": {:.1}, \"distance_m\": {:.2}, \
                 \"median_error_m\": {:.3}, \"final_error_m\": {:.3}, \
                 \"analysis_ms\": {:.2}, \"fused_final_m\": {:.3}, \
                 \"rim_only_final_m\": {:.3}, \"peak_speed_mps\": {:.3}, \
                 \"gate_m\": {}, \"within_gate\": {}}}",
                c.scenario,
                c.device,
                c.duration_s,
                c.distance_m,
                c.median_m,
                c.final_m,
                c.analysis_ms,
                c.fused_final_m,
                c.rim_only_final_m,
                c.peak_speed_mps,
                gate,
                c.within_gate(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"scenario_zoo\",\n",
            "  \"schema\": \"rim-scenarios-bench/1\",\n",
            "  \"fast\": {fast},\n",
            "  \"gate\": {{\"factor\": {factor}, \"floor_m\": {floor}, \
             \"min_lag_samples\": {min_lag}}},\n",
            "  \"devices\": [\n{devices}\n  ],\n",
            "  \"cells\": [\n{cells}\n  ]\n}}\n"
        ),
        fast = fast,
        factor = GATE_FACTOR,
        floor = GATE_FLOOR_M,
        min_lag = MIN_LAG_SAMPLES,
        devices = device_rows,
        cells = cell_rows,
    );
    match std::fs::write("BENCH_scenarios.json", json) {
        Ok(()) => eprintln!("[scenarios] wrote BENCH_scenarios.json"),
        Err(e) => eprintln!("[scenarios] could not write BENCH_scenarios.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_matrix_holds_the_accuracy_gates() {
        let cells = run_matrix(true);
        let n_devices = devices().len();
        assert_eq!(
            cells.len(),
            n_devices * (zoo::ZOO.len() + 1),
            "every scenario x device cell ran"
        );
        for c in &cells {
            assert!(
                c.median_m.is_finite() && c.final_m.is_finite(),
                "{} x {} produced finite errors",
                c.scenario,
                c.device
            );
            assert!(
                c.within_gate(),
                "{} x {}: median {:.3} m over gate {:?}",
                c.scenario,
                c.device,
                c.median_m,
                c.gate_m
            );
        }
        // The ZUPT-sustain arbitration end to end: on the running gait
        // the fused estimate must not regress past RIM-only dead
        // reckoning (a misfiring stance detector clamps velocity
        // mid-stride and drags the fused track behind the runner).
        for c in cells.iter().filter(|c| c.scenario == "running") {
            assert!(
                c.fused_final_m <= c.rim_only_final_m + 0.15,
                "running x {}: fused {:.3} m regressed past rim-only {:.3} m",
                c.device,
                c.fused_final_m,
                c.rim_only_final_m
            );
        }
        // The resolvability exemption must stay an exemption, not a
        // loophole: most of each device's motions are slow enough to
        // be speed-gated.
        for device in devices() {
            let gated = cells
                .iter()
                .filter(|c| c.device == device.name && c.gate_m.is_some())
                .count();
            assert!(
                gated >= 4,
                "{}: only {gated} gated cells — exemption rule too broad",
                device.name
            );
        }
    }
}
