//! The TRRS kernel benchmark behind `BENCH_kernel.json`: raw row-kernel
//! throughput for the scalar AoS reference, the SIMD f64 path, and the
//! reduced-precision f32 fast path, plus per-sample streaming latency and
//! end-to-end accuracy deltas per precision mode.

use crate::env;
use rim_channel::trajectory::{dwell, line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::alignment::{base_cross_trrs_range_prec, AlignmentConfig};
use rim_core::stream::{RimStream, StreamEvent};
use rim_core::{trrs_norm, NormSnapshot};
use rim_core::{Precision, Rim, RimConfig};
use rim_csi::frame::CsiSnapshot;
use rim_csi::LossModel;
use rim_dsp::complex::Complex64;
use rim_dsp::geom::Point2;
use rim_par::Pool;
use std::time::Instant;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A unit-norm synthetic snapshot with deterministic pseudo-random phases.
fn snapshot(tag: u64, n_sub: usize) -> NormSnapshot {
    NormSnapshot::from_snapshot(&CsiSnapshot {
        per_tx: vec![(0..n_sub)
            .map(|k| {
                let x = (mix(tag.wrapping_mul(0x9E3779B9).wrapping_add(k as u64)) >> 12) as f64
                    / (1u64 << 52) as f64;
                Complex64::from_polar(1.0, x * std::f64::consts::TAU)
            })
            .collect()],
    })
}

/// The pre-SoA scalar reference: one `trrs_norm` call per masked matrix
/// entry, exactly the per-entry loop `cross_trrs_row` runs. Returns the
/// matrix values and the number of TRRS entries computed.
fn aos_matrix(a: &[NormSnapshot], b: &[NormSnapshot], window: usize) -> (Vec<Vec<f64>>, u64) {
    let w = window as isize;
    let mut values = Vec::with_capacity(a.len());
    let mut entries = 0u64;
    for (t, snap) in a.iter().enumerate() {
        let mut row = vec![0.0f64; 2 * window + 1];
        for (k, slot) in row.iter_mut().enumerate() {
            let src = t as isize - (k as isize - w);
            if src < 0 || src as usize >= b.len() {
                continue;
            }
            *slot = trrs_norm(snap, &b[src as usize]);
            entries += 1;
        }
        values.push(row);
    }
    (values, entries)
}

/// Best-of-`reps` wall time of `f`, in seconds, plus the last result.
fn best_time<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("at least one rep"))
}

/// Per-sample stream latency (p50/p99, µs) with the incremental engine on,
/// at the given precision; also returns the flushed segment count.
fn stream_latency(precision: Precision, fast: bool) -> (f64, f64, usize) {
    let sim = ChannelSimulator::open_lab(7);
    let geo = env::linear_array();
    let fs = 100.0;
    let length_m = if fast { 6.0 } else { 20.0 };
    let mut traj = line(
        Point2::new(-3.0, 2.0),
        0.0,
        length_m,
        1.0,
        fs,
        OrientationMode::Fixed(0.0),
    );
    let end = traj.pose(traj.len() - 1);
    traj.extend(&dwell(end.pos, end.orientation, 0.75, fs));
    let dense = env::record(&sim, &geo, &traj, 7, LossModel::None, None);
    let n = dense.n_samples();
    let config = RimConfig::for_sample_rate(fs)
        .with_min_speed(0.3, env::SPACING, fs)
        .precision(precision);
    let mut stream = RimStream::new(geo, config).expect("valid config");
    let mut lat_us = Vec::with_capacity(n);
    let mut segments = 0usize;
    for i in 0..n {
        let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
        let t0 = Instant::now();
        let events = stream.ingest(snaps).expect("matching antenna count");
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        segments += events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Segment(_)))
            .count();
    }
    segments += stream
        .finish()
        .iter()
        .filter(|e| matches!(e, StreamEvent::Segment(_)))
        .count();
    lat_us.sort_by(f64::total_cmp);
    let pct = |p: f64| lat_us[(((lat_us.len() - 1) as f64) * p).round() as usize];
    (pct(0.50), pct(0.99), segments)
}

/// Runs the kernel benchmark and writes `BENCH_kernel.json`.
pub fn write_kernel_bench(fast: bool) {
    // ── Raw row-kernel throughput on one synthetic antenna pair. ──────
    let t_len = if fast { 240 } else { 600 };
    // The production default lag window at the paper's 200 Hz sample
    // rate (W = 0.5 s × rate = 100), so the measured shape is the one
    // `Rim::analyze` actually runs.
    let window = AlignmentConfig::for_sample_rate(200.0).window;
    let n_sub = 56usize;
    let reps = if fast { 3 } else { 7 };
    let a: Vec<NormSnapshot> = (0..t_len as u64)
        .map(|t| snapshot(t * 2 + 1, n_sub))
        .collect();
    let b: Vec<NormSnapshot> = (0..t_len as u64)
        .map(|t| snapshot(t * 3 + 7, n_sub))
        .collect();
    let pool = Pool::serial();

    let (scalar_s, (aos, entries)) = best_time(reps, || aos_matrix(&a, &b, window));
    let (simd64_s, m64) = best_time(reps, || {
        base_cross_trrs_range_prec(&a, &b, window, (0, t_len), &pool, Precision::F64Reference)
    });
    let (simd32_s, m32) = best_time(reps, || {
        base_cross_trrs_range_prec(&a, &b, window, (0, t_len), &pool, Precision::F32Fast)
    });

    // The CI-gated invariant: the SIMD f64 path reproduces the scalar
    // reference bit for bit.
    let bit_identical = aos
        .iter()
        .zip(&m64.values)
        .all(|(ra, rs)| ra.iter().zip(rs).all(|(x, y)| x.to_bits() == y.to_bits()));
    // The f32 fast path only has to stay inside its error budget.
    let max_delta = aos
        .iter()
        .zip(&m32.values)
        .flat_map(|(ra, rs)| ra.iter().zip(rs).map(|(x, y)| (x - y).abs()))
        .fold(0.0f64, f64::max);

    let tput = |secs: f64| entries as f64 / secs;
    let speedup_f64 = tput(simd64_s) / tput(scalar_s);
    let speedup_f32 = tput(simd32_s) / tput(scalar_s);
    let tier = format!("{:?}", rim_simd::active_tier()).to_lowercase();
    eprintln!(
        "[kernel] tier {tier}: scalar-f64 {:.2} M/s, simd-f64 {:.2} M/s ({speedup_f64:.1}x), \
         simd-f32 {:.2} M/s ({speedup_f32:.1}x), bit-identical {bit_identical}, \
         max f32 delta {max_delta:.2e}",
        tput(scalar_s) / 1e6,
        tput(simd64_s) / 1e6,
        tput(simd32_s) / 1e6,
    );

    // ── Per-sample streaming latency per precision mode. ──────────────
    let (p50_64, p99_64, seg_64) = stream_latency(Precision::F64Reference, fast);
    let (p50_32, p99_32, seg_32) = stream_latency(Precision::F32Fast, fast);
    eprintln!(
        "[kernel] stream f64: p50 {p50_64:.0} µs, p99 {p99_64:.0} µs ({seg_64} segments); \
         f32: p50 {p50_32:.0} µs, p99 {p99_32:.0} µs ({seg_32} segments)"
    );

    // ── End-to-end accuracy deltas on one lab walk. ───────────────────
    let sim = ChannelSimulator::open_lab(11);
    let geo = env::linear_array();
    let fs = env::SAMPLE_RATE;
    let walk = line(
        Point2::new(-2.0, 2.0),
        0.0,
        if fast { 3.0 } else { 6.0 },
        1.0,
        fs,
        OrientationMode::Fixed(0.0),
    );
    let dense = env::record(&sim, &geo, &walk, 11, LossModel::None, None);
    let cfg = env::rim_config(fs, 0.3);
    let est64 = Rim::new(geo.clone(), cfg.clone().precision(Precision::F64Reference))
        .unwrap()
        .analyze(&dense)
        .unwrap();
    let est32 = Rim::new(geo, cfg.precision(Precision::F32Fast))
        .unwrap()
        .analyze(&dense)
        .unwrap();
    let dist_delta_mm = (est64.total_distance() - est32.total_distance()).abs() * 1000.0;
    let mut heading_delta_deg = 0.0f64;
    for (s64, s32) in est64.segments.iter().zip(&est32.segments) {
        if let (Some(h1), Some(h2)) = (s64.heading_device, s32.heading_device) {
            let mut d = (h1 - h2).abs() % std::f64::consts::TAU;
            if d > std::f64::consts::PI {
                d = std::f64::consts::TAU - d;
            }
            heading_delta_deg = heading_delta_deg.max(d.to_degrees());
        }
    }
    eprintln!(
        "[kernel] f32 vs f64 on the walk: distance delta {dist_delta_mm:.3} mm, \
         heading delta {heading_delta_deg:.4}°, segments {} vs {}",
        est64.segments.len(),
        est32.segments.len()
    );

    let json = format!(
        concat!(
            "{{\n  \"schema\": \"rim-kernel-bench/1\",\n",
            "  \"tier\": \"{tier}\",\n",
            "  \"trrs\": {{\n",
            "    \"series_len\": {t_len}, \"window\": {window}, \"n_sub\": {n_sub},\n",
            "    \"entries\": {entries},\n",
            "    \"modes\": [\n",
            "      {{\"mode\": \"scalar-f64\", \"entries_per_s\": {sc:.0}}},\n",
            "      {{\"mode\": \"simd-f64\", \"entries_per_s\": {s64:.0}, \"speedup\": {sp64:.2}}},\n",
            "      {{\"mode\": \"simd-f32\", \"entries_per_s\": {s32:.0}, \"speedup\": {sp32:.2}}}\n",
            "    ],\n",
            "    \"max_f32_matrix_delta\": {delta:.3e}\n",
            "  }},\n",
            "  \"simd_f64_bit_identical\": {bits},\n",
            "  \"stream\": [\n",
            "    {{\"precision\": \"f64\", \"p50_us\": {p5064:.1}, \"p99_us\": {p9964:.1}, \"segments\": {g64}}},\n",
            "    {{\"precision\": \"f32\", \"p50_us\": {p5032:.1}, \"p99_us\": {p9932:.1}, \"segments\": {g32}}}\n",
            "  ],\n",
            "  \"accuracy\": {{\"distance_delta_mm\": {dmm:.4}, \"heading_delta_deg\": {hdeg:.5}, ",
            "\"segments_f64\": {n64}, \"segments_f32\": {n32}}}\n}}\n"
        ),
        tier = tier,
        t_len = t_len,
        window = window,
        n_sub = n_sub,
        entries = entries,
        sc = tput(scalar_s),
        s64 = tput(simd64_s),
        sp64 = speedup_f64,
        s32 = tput(simd32_s),
        sp32 = speedup_f32,
        delta = max_delta,
        bits = bit_identical,
        p5064 = p50_64,
        p9964 = p99_64,
        g64 = seg_64,
        p5032 = p50_32,
        p9932 = p99_32,
        g32 = seg_32,
        dmm = dist_delta_mm,
        hdeg = heading_delta_deg,
        n64 = est64.segments.len(),
        n32 = est32.segments.len()
    );
    match std::fs::write("BENCH_kernel.json", json) {
        Ok(()) => eprintln!("[kernel] wrote BENCH_kernel.json"),
        Err(e) => eprintln!("[kernel] could not write BENCH_kernel.json: {e}"),
    }
}
