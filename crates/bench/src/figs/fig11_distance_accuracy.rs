//! Fig. 11 — accuracy of moving distance.
//!
//! Paper: median error 2.3 cm for on-desk short moves, 8.4 cm for >10 m
//! cart traces (7.3 cm LOS, 8.6 cm NLOS); 90 % ≤ 15 cm, max ≤ 21 cm.

use crate::env::{self, linear_array};
use crate::report::{cdf_row, ErrorStats, Report};
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::LossModel;
use rim_dsp::geom::{Point2, Vec2};

/// One cart trace: place a 10 m run inside the office open band.
fn cart_trace(k: usize, fs: f64) -> (Point2, f64, f64) {
    // North↔south runs through the central open area, east of the
    // concrete service core. Every midpoint is LOS from AP #1 in the open
    // area and NLOS from the far-corner AP #0 (behind the y = 20 corridor
    // wall or the core), so the same trace set serves both classes.
    const NORTH: f64 = std::f64::consts::FRAC_PI_2;
    let starts = [
        (Point2::new(22.5, 8.5), NORTH),
        (Point2::new(23.5, 18.5), -NORTH),
        (Point2::new(20.5, 9.5), NORTH),
        (Point2::new(26.5, 18.5), -NORTH),
        (Point2::new(24.5, 8.7), NORTH),
        (Point2::new(19.8, 18.8), -NORTH),
    ];
    let (p, h) = starts[k % starts.len()];
    let _ = fs;
    (p, h, 10.0)
}

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 11",
        "Accuracy of moving distance",
        "median 2.3 cm desktop, 8.4 cm cart (7.3 LOS / 8.6 NLOS), 90% ≤ 15 cm, max ≤ 21 cm",
    );
    let fs = env::SAMPLE_RATE;
    let geo = linear_array();

    // Desktop: ~1 m moves on a desk (stable, well aligned).
    let n_desk = if fast { 4 } else { 16 };
    let mut desk_err = Vec::new();
    for k in 0..n_desk {
        let sim = ChannelSimulator::open_lab(7 + (k % 4) as u64);
        let heading = [0.0f64, 180.0, 0.0, 180.0][k % 4].to_radians();
        let traj = line(
            env::lab_start(k),
            heading,
            1.0,
            1.0,
            fs,
            OrientationMode::Fixed(0.0),
        );
        let dense = env::record(&sim, &geo, &traj, k as u64, LossModel::None, None);
        let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
            .unwrap()
            .analyze(&dense)
            .unwrap();
        desk_err.push((est.total_distance() - traj.total_distance()).abs());
    }

    // Cart: 10 m runs through the office; LOS with the AP in the open
    // area (#1), NLOS with the far-corner AP (#0).
    let n_cart_per_class = if fast { 2 } else { 6 };
    let mut los_err = Vec::new();
    let mut nlos_err = Vec::new();
    for (class, ap, errs) in [
        ("los", 1usize, &mut los_err),
        ("nlos", 0usize, &mut nlos_err),
    ] {
        for k in 0..n_cart_per_class {
            let sim = ChannelSimulator::office(ap, 11 + k as u64);
            let (start, heading, dist) = cart_trace(k, fs);
            // Cart pushes wobble: a small fixed deviation from the array
            // axis models the less-controlled movement.
            let dev = [3.0f64, -4.0, 2.0, -2.0, 5.0, -3.0][k % 6].to_radians();
            let traj = line(
                start,
                heading + dev,
                dist,
                1.0,
                fs,
                OrientationMode::Fixed(heading),
            );
            // Verify the class assumption at the trace midpoint.
            let mid = start + Vec2::from_angle(heading + dev) * (dist / 2.0);
            let is_los = sim.tracer().floorplan().is_los(sim.ap().pos, mid);
            debug_assert_eq!(is_los, class == "los", "AP {ap} trace {k}");
            let dense = env::record(&sim, &geo, &traj, 31 + k as u64, LossModel::None, None);
            let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
                .unwrap()
                .analyze(&dense)
                .unwrap();
            errs.push((est.total_distance() - traj.total_distance()).abs());
        }
    }
    let cart_all: Vec<f64> = los_err.iter().chain(&nlos_err).copied().collect();

    report.row("desktop (1 m moves)", ErrorStats::of(&desk_err).fmt_cm());
    report.row("cart overall (10 m)", ErrorStats::of(&cart_all).fmt_cm());
    report.row("cart LOS", ErrorStats::of(&los_err).fmt_cm());
    report.row("cart NLOS", ErrorStats::of(&nlos_err).fmt_cm());
    report.row("cart CDF", cdf_row(&cart_all, 100.0, "cm"));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn distance_errors_in_paper_ballpark() {
        let r = super::run(true);
        let desk = &r.rows[0].1;
        let median: f64 = desk
            .split("median ")
            .nth(1)
            .unwrap()
            .split(" cm")
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(median < 8.0, "desktop median under 8 cm: {median}");
    }
}
