//! Fig. 15 — impact of accumulative distance.
//!
//! Paper: over 10 m traces the median error per travelled metre stays in
//! the 3–14 cm band and "do[es] not considerably accumulate over long
//! distances" — speed estimation does not drift.

use crate::env::{self, linear_array};
use crate::report::Report;
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::LossModel;
use rim_dsp::geom::Point2;
use rim_dsp::stats::median;

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 15",
        "Impact of movement distance",
        "median error 3–14 cm across 1–10 m of travel; no heavy accumulation",
    );
    let fs = env::SAMPLE_RATE;
    let geo = linear_array();
    let traces = if fast { 3 } else { 8 };

    // errors[metre] collects the distance error when the truth first
    // crosses each metre mark, across traces.
    let mut per_metre: Vec<Vec<f64>> = vec![Vec::new(); 10];
    for k in 0..traces {
        let sim = ChannelSimulator::office(0, 11 + k as u64);
        let start = Point2::new(4.0 + (k % 2) as f64, 9.5 + 2.7 * (k % 3) as f64);
        let traj = line(start, 0.0, 10.0, 1.0, fs, OrientationMode::FollowPath);
        let dense = env::record(&sim, &geo, &traj, 41 + k as u64, LossModel::None, None);
        let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
            .unwrap()
            .analyze(&dense)
            .unwrap();

        // Estimated cumulative distance: integrate per-sample speed and
        // add the initial-motion compensation at the segment start.
        let dt = 1.0 / fs;
        let mut cum_est = vec![0.0; est.speed_mps.len()];
        let mut acc = 0.0;
        for (i, v) in est.speed_mps.iter().enumerate() {
            if let Some(seg) = est.segments.iter().find(|s| s.start == i) {
                if seg.kind == rim_core::SegmentKind::Translation {
                    acc += env::SPACING;
                    let _ = seg;
                }
            }
            if v.is_finite() {
                acc += v * dt;
            }
            cum_est[i] = acc;
        }
        let cum_truth = traj.cumulative_distance();
        for metre in 1..=10usize {
            if let Some(idx) = cum_truth.iter().position(|&d| d >= metre as f64) {
                let idx = idx.min(cum_est.len() - 1);
                per_metre[metre - 1].push((cum_est[idx] - cum_truth[idx]).abs());
            }
        }
    }

    let mut medians = Vec::new();
    for (metre, errs) in per_metre.iter().enumerate() {
        let med = median(errs);
        medians.push(med);
        report.row(
            format!("error @ {:>2} m travelled", metre + 1),
            format!("median {:.1} cm (n={})", med * 100.0, errs.len()),
        );
    }
    // Accumulation check: the paper's band is 3-14 cm; drift-free speed
    // estimation keeps the error bounded rather than growing with path
    // length the way a gyro/accelerometer bias would.
    let worst = medians.iter().cloned().fold(0.0f64, f64::max);
    report.row(
        "worst median over 1-10 m",
        format!("{:.1} cm", worst * 100.0),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn error_does_not_explode() {
        let r = super::run(true);
        let worst_row = &r.rows.last().unwrap().1;
        let worst_cm: f64 = worst_row.split(' ').next().unwrap().parse().unwrap();
        assert!(
            worst_cm < 20.0,
            "worst median over 10 m: {worst_cm} cm (paper band 3-14)"
        );
    }
}
