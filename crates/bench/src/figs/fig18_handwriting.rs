//! Fig. 18 — desktop handwriting.
//!
//! Paper: letters written by moving the array on a desk are reconstructed
//! recognisably; the mean trajectory error (minimum projection distance)
//! over the written letters is 2.4 cm.

use crate::env::{self, hexagonal_array};
use crate::report::Report;
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::LossModel;
use rim_dsp::geom::Point2;
use rim_tracking::handwriting::write_letter;
use rim_tracking::metrics::mean_projection_error;

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 18",
        "Desktop handwriting",
        "recognisable letters; mean trajectory error 2.4 cm",
    );
    let fs = env::SAMPLE_RATE;
    let geo = hexagonal_array();
    let letters: Vec<char> = if fast {
        vec!['R', 'I', 'M']
    } else {
        vec!['R', 'I', 'M', 'W', 'L', 'N', 'V', 'Z', 'O']
    };

    let mut errors = Vec::new();
    for (k, &letter) in letters.iter().enumerate() {
        let sim = ChannelSimulator::open_lab(7 + (k % 3) as u64);
        let origin = Point2::new(0.3 + 0.2 * (k % 4) as f64, 1.6 + 0.3 * (k % 3) as f64);
        let run = write_letter(letter, origin, 0.20, 0.3, fs).expect("supported letter");
        // Handwriting is slow; widen the lag window.
        let dense = env::record(
            &sim,
            &geo,
            &run.trajectory,
            80 + k as u64,
            LossModel::None,
            None,
        );
        let est = Rim::new(geo.clone(), env::rim_config(fs, 0.12))
            .unwrap()
            .analyze(&dense)
            .unwrap();
        let track = est.trajectory(run.truth[0], 0.0);
        let err = mean_projection_error(&track, &run.truth);
        // A collapsed track (nothing estimated) scores against the whole
        // stroke length instead of silently passing.
        let moved: f64 = track.windows(2).map(|w| w[0].distance(w[1])).sum();
        let err = if moved < 0.25 * run.trajectory.total_distance() {
            f64::NAN
        } else {
            err
        };
        errors.push(err);
        report.row(
            format!("letter {letter}"),
            match err.is_nan() {
                true => "reconstruction collapsed".to_string(),
                false => format!(
                    "mean trajectory error {:.1} cm over {:.2} m of strokes",
                    err * 100.0,
                    run.trajectory.total_distance()
                ),
            },
        );
    }
    let ok: Vec<f64> = errors.iter().copied().filter(|e| e.is_finite()).collect();
    report.row(
        "mean over letters",
        format!(
            "{:.1} cm ({} of {} letters reconstructed)",
            rim_dsp::stats::mean(&ok) * 100.0,
            ok.len(),
            errors.len()
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn rim_letters_reconstruct() {
        let r = super::run(true);
        let summary = &r.rows.last().unwrap().1;
        let mean_cm: f64 = summary.split(' ').next().unwrap().parse().unwrap();
        assert!(mean_cm < 6.0, "mean letter error {mean_cm} cm");
        assert!(summary.contains("3 of 3"), "{summary}");
    }
}
