//! Fig. 12 — accuracy of heading direction.
//!
//! Paper: sweeping a 90° range in 10° steps (plus opposites) with the
//! hexagonal array, most headings resolve to the nearest multiple of 30°;
//! overall mean error 6.1°, >90 % within 10°.

use crate::env::{self, hexagonal_array};
use crate::report::{ErrorStats, Report};
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::LossModel;
use rim_dsp::stats::angle_diff;

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 12",
        "Accuracy of heading direction",
        "mean error 6.1°, >90% within 10° (discrete 30° direction set)",
    );
    let fs = env::SAMPLE_RATE;
    let geo = hexagonal_array();

    // The paper's direction set: −90°..0° in 10° steps and each opposite.
    let step = if fast { 30 } else { 10 };
    let mut directions: Vec<f64> = (-90..=0).step_by(step).map(|d| d as f64).collect();
    let opposites: Vec<f64> = directions.iter().map(|d| d + 180.0).collect();
    directions.extend(opposites);

    let mut errors = Vec::new();
    let mut aligned_errors = Vec::new();
    let mut deviated_errors = Vec::new();
    let mut per_direction = Vec::new();
    for (k, &dir) in directions.iter().enumerate() {
        let sim = ChannelSimulator::open_lab(7 + (k % 3) as u64);
        let traj = line(
            env::lab_start(k),
            dir.to_radians(),
            1.0,
            1.0,
            fs,
            OrientationMode::Fixed(0.0),
        );
        let dense = env::record(&sim, &geo, &traj, k as u64, LossModel::None, None);
        let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
            .unwrap()
            .analyze(&dense)
            .unwrap();
        let err = match est.segments.first().and_then(|s| s.heading_device) {
            Some(h) => angle_diff(h, dir.to_radians()),
            None => std::f64::consts::PI, // total miss
        };
        errors.push(err);
        // "Well-aligned" = the direction is a multiple of 30°.
        if (dir.rem_euclid(30.0)).abs() < 1e-9 {
            aligned_errors.push(err);
        } else {
            deviated_errors.push(err);
        }
        per_direction.push((dir, err.to_degrees()));
    }

    for (dir, err) in &per_direction {
        report.row(format!("heading {dir:>6.0}°"), format!("error {err:>5.1}°"));
    }
    let stats = ErrorStats::of(&errors);
    report.row("overall", stats.fmt_deg());
    let within10 = errors
        .iter()
        .filter(|&&e| e <= 10f64.to_radians() + 1e-9)
        .count() as f64
        / errors.len() as f64;
    report.row("within 10°", format!("{:.0} %", within10 * 100.0));
    if !aligned_errors.is_empty() {
        report.row(
            "well-aligned directions",
            ErrorStats::of(&aligned_errors).fmt_deg(),
        );
    }
    if !deviated_errors.is_empty() {
        report.row(
            "deviated directions",
            ErrorStats::of(&deviated_errors).fmt_deg(),
        );
    }

    // Extension (paper §7 future work): continuous heading refinement by
    // prominence-weighted interpolation between adjacent directions.
    let mut cont_errors = Vec::new();
    for (k, &dir) in directions.iter().enumerate() {
        let sim = ChannelSimulator::open_lab(7 + (k % 3) as u64);
        let traj = line(
            env::lab_start(k),
            dir.to_radians(),
            1.0,
            1.0,
            fs,
            OrientationMode::Fixed(0.0),
        );
        let dense = env::record(&sim, &geo, &traj, k as u64, LossModel::None, None);
        let mut config = env::rim_config(fs, 0.3);
        config.continuous_heading = true;
        let est = Rim::new(geo.clone(), config)
            .unwrap()
            .analyze(&dense)
            .unwrap();
        let err = match est.segments.first().and_then(|s| s.heading_device) {
            Some(h) => angle_diff(h, dir.to_radians()),
            None => std::f64::consts::PI,
        };
        cont_errors.push(err);
    }
    report.row(
        "with continuous refinement (§7 ext.)",
        ErrorStats::of(&cont_errors).fmt_deg(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn aligned_headings_resolve_exactly() {
        let r = super::run(true);
        let overall = r.rows.iter().find(|(l, _)| l == "overall").unwrap();
        let mean: f64 = overall
            .1
            .split("mean ")
            .nth(1)
            .unwrap()
            .split('°')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(mean < 15.0, "mean heading error {mean}°");
    }
}
