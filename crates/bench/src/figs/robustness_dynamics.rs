//! §6.2.8 — robustness to environmental dynamics.
//!
//! Paper (text, no figure): walking humans near the receiver change part
//! of the multipath but RIM's accuracy holds, because many paths remain
//! and RIM never relies on absolute TRRS values.

use crate::env::{self, linear_array};
use crate::report::{ErrorStats, Report};
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::{
    uniform_field, walking_humans, ApConfig, ChannelSimulator, Floorplan, RayTracer,
    SubcarrierLayout, TracerConfig,
};
use rim_core::Rim;
use rim_csi::LossModel;
use rim_dsp::geom::Point2;

fn sim_with_humans(n_humans: usize, seed: u64) -> ChannelSimulator {
    let lo = Point2::new(-15.0, -15.0);
    let hi = Point2::new(15.0, 15.0);
    let scat = uniform_field(lo, hi, 150, 0.35, seed);
    // Walking humans: strong moving scatterers at up to 1.5 m/s, gains on
    // par with the static field's median.
    let humans = walking_humans(
        Point2::new(-4.0, -2.0),
        Point2::new(4.0, 6.0),
        n_humans,
        1.5,
        0.35,
        seed + 1,
    );
    let tracer = RayTracer::new(Floorplan::empty(), scat, humans, TracerConfig::default());
    ChannelSimulator::new(
        tracer,
        SubcarrierLayout::ht40_5ghz(),
        ApConfig::standard(Point2::new(-8.0, 0.0)),
    )
}

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "§6.2.8",
        "Robustness to environmental dynamics",
        "walking humans near the device do not break tracking: only part of \
         the multipath changes and RIM uses relative, not absolute, TRRS",
    );
    let fs = env::SAMPLE_RATE;
    let geo = linear_array();
    let traces = if fast { 3 } else { 6 };

    for n_humans in [0usize, 2, 5] {
        let mut errors = Vec::new();
        for k in 0..traces {
            let sim = sim_with_humans(n_humans, 7 + k as u64);
            let traj = line(
                env::lab_start(k),
                0.0,
                2.0,
                1.0,
                fs,
                OrientationMode::FollowPath,
            );
            let dense = env::record(&sim, &geo, &traj, 200 + k as u64, LossModel::None, None);
            let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
                .unwrap()
                .analyze(&dense)
                .unwrap();
            errors.push((est.total_distance() - traj.total_distance()).abs());
        }
        report.row(
            format!("{n_humans} walking humans"),
            ErrorStats::of(&errors).fmt_cm(),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn humans_do_not_break_tracking() {
        let r = super::run(true);
        for (label, value) in &r.rows {
            let median: f64 = value
                .split("median ")
                .nth(1)
                .unwrap()
                .split(" cm")
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(median < 25.0, "{label}: median {median} cm");
        }
    }
}
