//! Fig. 7 — movement detection.
//!
//! Paper: on a stop-and-go trace the TRRS indicator separates moving from
//! static with a clear threshold gap and catches transient stops that both
//! the accelerometer and gyroscope detectors miss.

use crate::env::{self, linear_array};
use crate::report::Report;
use rim_channel::trajectory::stop_and_go;
use rim_channel::ChannelSimulator;
use rim_core::movement::{movement_indicator, moving_segments, MovementConfig};
use rim_core::trrs::NormSnapshot;
use rim_csi::LossModel;
use rim_sensors::{accel_movement_indicator, gyro_movement_indicator, ImuConfig, SimulatedImu};

/// Detection accuracy of a thresholded indicator against ground truth.
fn accuracy(
    indicator: &[f64],
    truth_moving: &[bool],
    threshold: f64,
    below_is_moving: bool,
) -> f64 {
    let correct = indicator
        .iter()
        .zip(truth_moving)
        .filter(|(&v, &m)| {
            let flagged = if below_is_moving {
                v < threshold
            } else {
                v > threshold
            };
            flagged == m
        })
        .count();
    correct as f64 / indicator.len() as f64
}

/// Number of detected stop gaps inside the trace.
fn stops_detected(flags: &[bool], min_len: usize) -> usize {
    // Invert: count static segments strictly inside the moving span.
    let inverted: Vec<bool> = flags.iter().map(|&m| !m).collect();
    let segs = moving_segments(&inverted, min_len);
    segs.iter()
        .filter(|&&(s, e)| s > 0 && e < flags.len())
        .count()
}

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 7",
        "Movement detection",
        "TRRS cleanly separates motion from rest and detects all 3 transient \
         stops; accelerometer and gyroscope miss them",
    );
    let fs = env::SAMPLE_RATE;
    let geo = linear_array();
    let sim = ChannelSimulator::open_lab(7);
    // 4 moves of 1 m with 3 short stops in between (the paper's three
    // transient stops).
    let pause_s = if fast { 0.6 } else { 1.0 };
    let traj = stop_and_go(env::lab_start(0), 0.0, 1.0, pause_s, 4, 1.0, fs);

    // Ground truth motion mask.
    let truth: Vec<bool> = traj.speeds().iter().map(|&v| v > 1e-6).collect();

    // RIM indicator (self-TRRS on antenna 0).
    let dense = env::record(&sim, &geo, &traj, 1, LossModel::None, None);
    let series = NormSnapshot::series(&dense.antennas[0]);
    let cfg = MovementConfig::for_sample_rate(fs);
    let ind = movement_indicator(&series, cfg);
    // The self-TRRS needs `lag` samples of history, so the indicator runs
    // `lag` samples behind ground truth; compare against a truth mask
    // delayed by the same fixed latency (the pipeline compensates this by
    // backdating segment starts).
    let truth_shifted: Vec<bool> = (0..truth.len())
        .map(|i| truth[i.saturating_sub(cfg.lag)])
        .collect();
    let rim_acc = accuracy(&ind, &truth_shifted, cfg.threshold, true);
    let rim_flags: Vec<bool> = ind.iter().map(|&v| v < cfg.threshold).collect();
    let min_stop = (0.3 * fs) as usize;
    let rim_stops = stops_detected(&rim_flags, min_stop);

    // The separation gap: worst moving indicator vs worst static one.
    let moving_vals: Vec<f64> = ind
        .iter()
        .zip(&truth)
        .filter(|(_, &m)| m)
        .map(|(&v, _)| v)
        .collect();
    let static_vals: Vec<f64> = ind
        .iter()
        .zip(&truth)
        .filter(|(_, &m)| !m)
        .map(|(&v, _)| v)
        .collect();
    let gap =
        rim_dsp::stats::quantile(&static_vals, 0.1) - rim_dsp::stats::quantile(&moving_vals, 0.9);

    // MEMS baselines.
    let imu = SimulatedImu::new(ImuConfig::consumer(), 3).sample(&traj);
    let acc_ind = accel_movement_indicator(&imu.accel_body, (0.1 * fs) as usize);
    let gyr_ind = gyro_movement_indicator(&imu.gyro_z, (0.1 * fs) as usize);
    // Baselines flag motion when the indicator EXCEEDS a threshold; sweep
    // for their best threshold to be generous.
    let best = |ind: &[f64]| -> (f64, usize) {
        let mut top = (0.0, 0usize);
        for th in [0.05, 0.1, 0.2, 0.3, 0.5] {
            let a = accuracy(ind, &truth, th, false);
            if a > top.0 {
                let flags: Vec<bool> = ind.iter().map(|&v| v > th).collect();
                top = (a, stops_detected(&flags, min_stop));
            }
        }
        top
    };
    let (acc_best, acc_stops) = best(&acc_ind);
    let (gyr_best, gyr_stops) = best(&gyr_ind);

    report.row(
        "RIM detection accuracy",
        format!("{:.1} %", rim_acc * 100.0),
    );
    report.row("RIM indicator gap (static − moving)", format!("{gap:.2}"));
    report.row("RIM transient stops detected", format!("{rim_stops}/3"));
    report.row(
        "accelerometer accuracy (best threshold)",
        format!("{:.1} %, stops {acc_stops}/3", acc_best * 100.0),
    );
    report.row(
        "gyroscope accuracy (best threshold)",
        format!("{:.1} %, stops {gyr_stops}/3", gyr_best * 100.0),
    );
    report.note(
        "constant-velocity motion is invisible to inertial sensors between \
         transients, which is why their detectors miss the pattern"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn rim_detects_stops_and_beats_baselines() {
        let r = super::run(true);
        let rim_acc: f64 = r.rows[0]
            .1
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(rim_acc > 90.0, "RIM accuracy {rim_acc}");
        let stops = &r.rows[2].1;
        assert!(stops.starts_with("3/"), "all stops found: {stops}");
    }
}
