//! Fig. 21 — tracking by RIM integrated with inertial sensors.
//!
//! Paper: with one 3-antenna NIC, RIM supplies precise distance while a
//! gyroscope supplies direction; raw fusion drifts with the gyro, and the
//! map-constrained particle filter "gracefully reconstructs the real
//! trajectory".

use crate::env::{self, linear_array};
use crate::report::Report;
use rim_channel::trajectory::{polyline, OrientationMode};
use rim_channel::{office_floorplan, ChannelSimulator};
use rim_core::Rim;
use rim_csi::LossModel;
use rim_dsp::geom::Point2;
use rim_sensors::{ImuConfig, SimulatedImu};
use rim_tracking::metrics::mean_projection_error;
use rim_tracking::{Fuser, MapFusionConfig};

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 21",
        "Tracking by RIM + inertial sensors",
        "RIM distances accurate, gyro directions drift; the particle filter \
         with floorplan constraints recovers the true trajectory",
    );
    let fs = if fast { 100.0 } else { 200.0 };
    let geo = linear_array();
    let sim = ChannelSimulator::office(0, 11);

    // A ~45 m route with turns (the device turns here, so the gyroscope
    // sees them — unlike Fig. 20's sideway legs). The route threads the
    // south-corridor door gap (x ∈ [14, 16] at y = 8) and runs close to
    // walls, giving the particle filter's map constraint something to
    // bite on — as the paper's floor-wide route does.
    let wps = [
        Point2::new(5.0, 9.0),
        Point2::new(15.0, 9.0),
        Point2::new(15.0, 2.5), // through the door gap, into the office
        Point2::new(15.0, 9.0), // and back out
        Point2::new(15.0, 12.5),
        Point2::new(26.5, 12.5), // between the service core and the glass room
        Point2::new(26.5, 18.5),
        Point2::new(18.0, 18.5),
    ];
    let traj = polyline(&wps, 1.0, fs, OrientationMode::FollowPath);
    let truth: Vec<Point2> = traj.poses().iter().map(|p| p.pos).collect();

    let dense = env::record(&sim, &geo, &traj, 7, LossModel::None, None);
    let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
        .unwrap()
        .analyze(&dense)
        .unwrap();
    report.row(
        "RIM distance",
        format!(
            "{:.2} m (truth {:.2} m, err {:.1} cm)",
            est.total_distance(),
            traj.total_distance(),
            (est.total_distance() - traj.total_distance()).abs() * 100.0
        ),
    );

    // An uncalibrated gyroscope: a deterministic 0.4 °/s residual bias on
    // top of the consumer noise model (the paper's cart runs show clearly
    // drifting directions; a freshly-calibrated consumer gyro would make
    // the comparison trivial).
    let mut imu = SimulatedImu::new(ImuConfig::consumer(), 5).sample(&traj);
    let bias = 0.4f64.to_radians();
    for g in &mut imu.gyro_z {
        *g += bias;
    }
    let (floorplan, _) = office_floorplan();
    let fused = Fuser::builder()
        .initial_position(wps[0])
        .build()
        .expect("default fusion knobs are valid")
        .fuse_with_map(&est, &imu.gyro_z, &floorplan, &MapFusionConfig::default());
    let dr_err = mean_projection_error(&fused.dead_reckoned, &truth);
    let pf_err = mean_projection_error(&fused.filtered, &truth);
    report.row("w/o PF mean track error", format!("{:.2} m", dr_err));
    report.row("w/ PF mean track error", format!("{:.2} m", pf_err));
    report.row(
        "w/o PF endpoint error",
        format!(
            "{:.2} m",
            fused
                .dead_reckoned
                .last()
                .unwrap()
                .distance(*truth.last().unwrap())
        ),
    );
    report.row(
        "w/ PF endpoint error",
        format!(
            "{:.2} m",
            fused
                .filtered
                .last()
                .unwrap()
                .distance(*truth.last().unwrap())
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn particle_filter_does_not_hurt() {
        let r = super::run(true);
        let val = |label: &str| -> f64 {
            r.rows
                .iter()
                .find(|(l, _)| l == label)
                .unwrap()
                .1
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let without = val("w/o PF mean track error");
        let with = val("w/ PF mean track error");
        assert!(
            with <= without + 0.3,
            "PF helps or is neutral: {with} vs {without}"
        );
        assert!(with < 3.0, "filtered track stays near truth: {with} m");
    }
}
