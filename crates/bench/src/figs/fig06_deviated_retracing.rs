//! Fig. 6 — antenna alignment under deviated retracing.
//!
//! Paper: moving at an angle α off the pair's aligned line still produces
//! an evident (though weaker) TRRS peak up to α ≈ 15°, and the Δd′ = Δd·cos α
//! approximation overestimates distance by 1/cos α (3.53 % at 15°).

use crate::env::{self, linear_array};
use crate::report::Report;
use rim_channel::trajectory::{back_and_forth, line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::alignment::{base_cross_trrs_range, virtual_average};
use rim_core::tracking_dp::{track_peaks, DpConfig};
use rim_core::trrs::NormSnapshot;
use rim_core::{AlignmentMatrix, Rim};
use rim_csi::LossModel;

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 6",
        "Deviated retracing",
        "TRRS peaks survive ≤15° deviation, weaker but evident; distance \
         overestimated by 1/cos α (worst 3.53 % at 15°, mean 1.20 %)",
    );
    let fs = env::SAMPLE_RATE;
    let geo = linear_array();
    let n_seeds = if fast { 2 } else { 4 };

    // (a) Ridge prominence vs deviation angle for the adjacent pair.
    for deviation_deg in [0.0f64, 5.0, 10.0, 15.0, 20.0, 25.0] {
        let mut prom = 0.0;
        for seed in 0..n_seeds {
            let sim = ChannelSimulator::open_lab(9 + seed);
            let traj = back_and_forth(
                env::lab_start(seed as usize),
                deviation_deg.to_radians(),
                0.5,
                1.0,
                0.3,
                fs,
                OrientationMode::Fixed(0.0),
            );
            let dense = env::record(&sim, &geo, &traj, seed, LossModel::None, None);
            let series: Vec<Vec<NormSnapshot>> = dense
                .antennas
                .iter()
                .map(|s| NormSnapshot::series(s))
                .collect();
            let n = dense.n_samples();
            let b = base_cross_trrs_range(&series[0], &series[1], 26, 0, n);
            let m = virtual_average(&b, 30);
            let path = track_peaks(&m, DpConfig::default());
            // Prominence over the forward phase (skip transients).
            let lo = n / 8;
            let hi = 3 * n / 8;
            prom += (lo..hi)
                .map(|t| m.at(t, path.lags[t]) - m.column_floor(t))
                .sum::<f64>()
                / (hi - lo) as f64;
        }
        report.row(
            format!("ridge prominence @ {deviation_deg:>4.0}° deviation"),
            format!("{:.3}", prom / n_seeds as f64),
        );
    }

    // (b) Distance overestimation at 15° deviation (full pipeline).
    let mut ratios = Vec::new();
    for seed in 0..n_seeds {
        let sim = ChannelSimulator::open_lab(9 + seed);
        let truth = 1.0;
        let traj = line(
            env::lab_start(seed as usize + 2),
            15f64.to_radians(),
            truth,
            1.0,
            fs,
            OrientationMode::Fixed(0.0),
        );
        let dense = env::record(&sim, &geo, &traj, seed + 9, LossModel::None, None);
        let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
            .unwrap()
            .analyze(&dense)
            .unwrap();
        if est.total_distance() > 0.0 {
            ratios.push(est.total_distance() / truth);
        }
    }
    if !ratios.is_empty() {
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        report.row(
            "distance ratio @ 15° deviation",
            format!(
                "{:.3} (theory 1/cos 15° = {:.3})",
                mean_ratio,
                1.0 / 15f64.to_radians().cos()
            ),
        );
    }
    let _unused: Option<AlignmentMatrix> = None;
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn prominence_decays_with_deviation() {
        let r = super::run(true);
        let val = |i: usize| -> f64 { r.rows[i].1.parse().unwrap() };
        let p0 = val(0);
        let p15 = val(3);
        let p25 = val(5);
        assert!(p0 > p15, "aligned beats 15°: {p0} vs {p15}");
        assert!(p15 > 0.07, "15° deviation still evident: {p15}");
        assert!(p25 < p0 * 0.6, "25° clearly degraded: {p25} vs {p0}");
    }
}
