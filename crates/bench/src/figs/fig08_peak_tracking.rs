//! Fig. 8 — TRRS peak tracking via dynamic programming.
//!
//! Paper: on a forward-then-backward movement the DP tracker recovers the
//! alignment-delay path robustly — positive lags while moving forward,
//! negative while moving backward — "regardless of measurement noises and
//! imperfect retracing".

use crate::env::{self, linear_array};
use crate::report::Report;
use rim_channel::trajectory::back_and_forth;
use rim_channel::ChannelSimulator;
use rim_core::alignment::{base_cross_trrs_range, virtual_average};
use rim_core::tracking_dp::{track_peaks, DpConfig};
use rim_core::trrs::NormSnapshot;
use rim_csi::{HardwareProfile, LossModel};

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 8",
        "DP peak tracking on a back-and-forth move",
        "tracked lags sit at +Δd/v·fs moving forward and the mirrored \
         negative lag moving backward, despite noise and packet loss",
    );
    let fs = env::SAMPLE_RATE;
    let speed = 1.0;
    let geo = linear_array();
    let sim = ChannelSimulator::open_lab(7);
    let dist = if fast { 0.8 } else { 1.5 };
    let traj = back_and_forth(
        env::lab_start(1),
        0.0,
        dist,
        speed,
        0.5,
        fs,
        rim_channel::trajectory::OrientationMode::Fixed(0.0),
    );
    // Stress: noisy front-end plus 10 % packet loss.
    let dense = env::record(
        &sim,
        &geo,
        &traj,
        5,
        LossModel::Iid { p: 0.1 },
        Some(HardwareProfile::noisy()),
    );
    let series: Vec<Vec<NormSnapshot>> = dense
        .antennas
        .iter()
        .map(|s| NormSnapshot::series(s))
        .collect();
    let n = dense.n_samples();
    let b = base_cross_trrs_range(&series[0], &series[1], 26, 0, n);
    let m = virtual_average(&b, 30);
    let path = track_peaks(&m, DpConfig::default());

    // Expected lag magnitude.
    let true_lag = (0.0258 / speed * fs).round() as isize;
    // Evaluate in the steady middle of each phase.
    let fwd_len = (dist / speed * fs) as usize;
    let pause = (0.5 * fs) as usize;
    let fwd_mid = fwd_len / 4..3 * fwd_len / 4;
    let back_start = fwd_len + pause;
    let back_mid = back_start + fwd_len / 4..back_start + 3 * fwd_len / 4;

    let close = |r: std::ops::Range<usize>, sign: isize| {
        let total = r.len();
        let good = r
            .filter(|&t| {
                let l = path.lags[t];
                l.signum() == sign && (l.abs() - true_lag).abs() <= 2
            })
            .count();
        good as f64 / total as f64
    };
    let fwd_frac = close(fwd_mid, 1);
    let back_frac = close(back_mid, -1);

    report.row("expected |lag|", format!("{true_lag} samples"));
    report.row(
        "forward phase: lag within ±2 of truth",
        format!("{:.0} %", fwd_frac * 100.0),
    );
    report.row(
        "backward phase: mirrored lag within ±2",
        format!("{:.0} %", back_frac * 100.0),
    );
    report.row("path jumpiness", format!("{:.3} lags/step", path.jumpiness));
    report.note("noisy hardware profile + 10 % i.i.d. packet loss".to_string());
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn tracks_both_phases() {
        let r = super::run(true);
        let frac = |i: usize| -> f64 {
            r.rows[i]
                .1
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(frac(1) > 80.0, "forward {}%", frac(1));
        assert!(frac(2) > 80.0, "backward {}%", frac(2));
    }
}
