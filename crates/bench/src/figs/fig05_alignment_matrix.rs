//! Fig. 5 — alignment matrices of a square trajectory.
//!
//! Paper: driving the hexagonal array around a square, the aligned pair
//! switches as the heading does — "1 vs. 3 followed by 1 vs. 6, and then
//! again 3 vs. 1, 6 vs. 1 in turn"; parallel pairs behave identically.
//! We report, per leg of the square, which parallel group carries the
//! strongest tracked ridge and the heading it implies.

use crate::env::{self, hexagonal_array};
use crate::report::Report;
use rim_channel::trajectory::{polyline, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::alignment::{base_cross_trrs_range, virtual_average};
use rim_core::tracking_dp::{track_peaks, DpConfig};
use rim_core::trrs::NormSnapshot;
use rim_core::AlignmentMatrix;
use rim_csi::LossModel;
use rim_dsp::geom::Point2;
use rim_dsp::stats::wrap_angle;

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 5",
        "Alignment matrices of a square trajectory",
        "the aligned pair (and its parallel twin) switches with each leg; \
         lag sign flips when direction reverses along the same pair line",
    );
    let fs = env::SAMPLE_RATE;
    let side = if fast { 0.6 } else { 1.0 };
    let geo = hexagonal_array();
    let sim = ChannelSimulator::open_lab(7);
    let p0 = Point2::new(0.0, 1.5);
    let wps = [
        p0,
        Point2::new(p0.x + side, p0.y),
        Point2::new(p0.x + side, p0.y + side),
        Point2::new(p0.x, p0.y + side),
        p0,
    ];
    let traj = polyline(&wps, 1.0, fs, OrientationMode::Fixed(0.0));
    let dense = env::record(&sim, &geo, &traj, 3, LossModel::None, None);
    let series: Vec<Vec<NormSnapshot>> = dense
        .antennas
        .iter()
        .map(|s| NormSnapshot::series(s))
        .collect();

    let groups = geo.parallel_groups();
    let w = 26;
    let v = 30;
    let n = dense.n_samples();
    // Build averaged matrices + tracked paths per group once.
    let tracked: Vec<(usize, AlignmentMatrix, Vec<isize>)> = groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let mats: Vec<AlignmentMatrix> = g
                .iter()
                .map(|pg| {
                    let b = base_cross_trrs_range(&series[pg.pair.i], &series[pg.pair.j], w, 0, n);
                    virtual_average(&b, v)
                })
                .collect();
            let refs: Vec<&AlignmentMatrix> = mats.iter().collect();
            let avg = AlignmentMatrix::average(&refs);
            let path = track_peaks(&avg, DpConfig::default());
            (gi, avg, path.lags)
        })
        .collect();

    // Evaluate the winning group per leg of the square.
    let leg_samples = (side * fs) as usize;
    let truth_heading = [0.0f64, 90.0, 180.0, -90.0];
    let mut correct_legs = 0;
    for (leg, &truth) in truth_heading.iter().enumerate() {
        let mid0 = leg * leg_samples + leg_samples / 4;
        let mid1 = leg * leg_samples + 3 * leg_samples / 4;
        let (best_gi, best_q, best_lag) = tracked
            .iter()
            .map(|(gi, avg, lags)| {
                let q: f64 = (mid0..mid1)
                    .map(|t| avg.at(t, lags[t]) - avg.column_floor(t))
                    .sum::<f64>()
                    / (mid1 - mid0) as f64;
                let mid_lag = lags[(mid0 + mid1) / 2];
                (*gi, q, mid_lag)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let g = &groups[best_gi];
        let implied = if best_lag >= 0 {
            g[0].direction
        } else {
            wrap_angle(g[0].direction + std::f64::consts::PI)
        };
        let pair_names: Vec<String> = g.iter().map(|p| p.pair.to_string()).collect();
        let ok = rim_dsp::stats::angle_diff(implied, truth.to_radians()) < 16f64.to_radians();
        if ok {
            correct_legs += 1;
        }
        report.row(
            format!("leg {} (truth {truth:>4}°)", leg + 1),
            format!(
                "aligned group {{{}}} lag {:+} → heading {:.0}° (prominence {:.2})",
                pair_names.join(", "),
                best_lag,
                implied.to_degrees(),
                best_q
            ),
        );
    }
    report.row(
        "legs with correct aligned pair",
        format!("{correct_legs}/4"),
    );
    report.note("pair labels are 1-based as in the paper's Fig. 2".to_string());
    report
}

/// Renders the averaged alignment matrix of the first parallel group as
/// an ASCII heatmap (used by the binary for the paper's Fig. 5 visual).
pub fn heatmap(fast: bool) -> Option<String> {
    let fs = env::SAMPLE_RATE;
    let side = if fast { 0.6 } else { 1.0 };
    let geo = hexagonal_array();
    let sim = ChannelSimulator::open_lab(7);
    let p0 = Point2::new(0.0, 1.5);
    let wps = [
        p0,
        Point2::new(p0.x + side, p0.y),
        Point2::new(p0.x + side, p0.y + side),
        Point2::new(p0.x, p0.y + side),
        p0,
    ];
    let traj = polyline(&wps, 1.0, fs, OrientationMode::Fixed(0.0));
    let dense = env::record(&sim, &geo, &traj, 3, LossModel::None, None);
    let series: Vec<Vec<NormSnapshot>> = dense
        .antennas
        .iter()
        .map(|s| NormSnapshot::series(s))
        .collect();
    let g = geo.parallel_groups().into_iter().next()?;
    let mats: Vec<AlignmentMatrix> = g
        .iter()
        .map(|pg| {
            let b = base_cross_trrs_range(
                &series[pg.pair.i],
                &series[pg.pair.j],
                26,
                0,
                dense.n_samples(),
            );
            virtual_average(&b, 30)
        })
        .collect();
    let refs: Vec<&AlignmentMatrix> = mats.iter().collect();
    let avg = AlignmentMatrix::average(&refs);
    Some(rim_core::diagnostics::render_matrix(&avg, 78, 17))
}

#[cfg(test)]
mod tests {
    #[test]
    fn square_legs_resolve() {
        let r = super::run(true);
        let last = &r.rows.last().unwrap().1;
        let correct: u32 = last.split('/').next().unwrap().parse().unwrap();
        assert!(correct >= 3, "at least 3 of 4 legs: {last}");
    }
}
