//! Fig. 16 — impact of sampling rate.
//!
//! Paper: downsampling the 200 Hz CSI shows accuracy degrading below
//! ~100 Hz at 1 m/s — "to ensure sub-centimeter displacement within one
//! sample, at least 100 Hz is needed for a speed of 1 m/s".

use crate::env::{self, linear_array};
use crate::report::{ErrorStats, Report};
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::LossModel;

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 16",
        "Impact of sampling rate",
        "accuracy improves with rate; ≥100 Hz needed at 1 m/s; 20–40 Hz insufficient",
    );
    let fs = env::SAMPLE_RATE;
    let geo = linear_array();
    let traces = if fast { 3 } else { 6 };

    // Record once at 200 Hz per trace, then decimate.
    let mut recordings = Vec::new();
    let mut truths = Vec::new();
    for k in 0..traces {
        let sim = ChannelSimulator::open_lab(7 + k as u64);
        // 0.8 m/s: a realistic cart speed that does not resonate with
        // the integer-lag grid at low rates (1.0 m/s would, hiding the
        // quantisation knee).
        let traj = line(
            env::lab_start(k),
            0.0,
            4.0,
            0.8,
            fs,
            OrientationMode::FollowPath,
        );
        truths.push(traj.total_distance());
        recordings.push(env::record(
            &sim,
            &geo,
            &traj,
            61 + k as u64,
            LossModel::None,
            None,
        ));
    }

    for refinement in [false, true] {
        for factor in [1usize, 2, 5, 10] {
            let rate = fs / factor as f64;
            let mut errors = Vec::new();
            for (rec, &truth) in recordings.iter().zip(&truths) {
                let dec = rec.decimate(factor);
                // The lag window in *samples* shrinks with the rate; keep
                // the same minimum-speed coverage.
                let mut config = env::rim_config(rate, 0.3);
                config.subsample_refinement = refinement;
                let est = Rim::new(geo.clone(), config)
                    .unwrap()
                    .analyze(&dec)
                    .unwrap();
                errors.push((est.total_distance() - truth).abs());
            }
            report.row(
                format!(
                    "{rate:>5.0} Hz ({})",
                    if refinement {
                        "sub-sample refined"
                    } else {
                        "integer lags, as the paper"
                    }
                ),
                ErrorStats::of(&errors).fmt_cm(),
            );
        }
    }
    report.note(
        "at 0.8 m/s one sample spans 1 cm at 80 Hz and 4 cm at 20 Hz; once the \
         alignment delay approaches one sample the integer-lag quantisation \
         dominates and accuracy collapses — the knee the paper reports. Our \
         parabolic sub-sample refinement (an improvement over the paper) \
         softens but cannot remove a sub-sample delay"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn high_rate_beats_low_rate_with_integer_lags() {
        let r = super::run(true);
        let median = |i: usize| -> f64 {
            r.rows[i]
                .1
                .split("median ")
                .nth(1)
                .unwrap()
                .split(" cm")
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let at200 = median(0);
        let at20 = median(3);
        assert!(
            at200 < at20,
            "200 Hz ({at200} cm) must beat 20 Hz ({at20} cm)"
        );
    }
}
