//! §7 — the *swinging turn* limitation, demonstrated.
//!
//! Paper: "The current prototype of RIM can only sense in-place rotation
//! … and is not able to monitor the rotating angle of swinging turns
//! (i.e., move while turn)." We drive the hexagonal array along circular
//! arcs (translation + simultaneous rotation) and measure what survives:
//! the travelled *distance* should stay accurate (retracing still works
//! along the curved path), while the rotating-angle estimate should
//! largely miss the orientation change.

use crate::env::{self, hexagonal_array};
use crate::report::{ErrorStats, Report};
use rim_channel::trajectory::arc;
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::LossModel;
use rim_dsp::geom::Point2;

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "§7 limitation",
        "Swinging turns (move while turning)",
        "distance along the curve remains measurable; the simultaneous \
         rotation is NOT sensed (an acknowledged open problem)",
    );
    let fs = env::SAMPLE_RATE;
    let geo = hexagonal_array();
    let traces = if fast { 2 } else { 4 };

    let mut dist_err = Vec::new();
    let mut rot_captured = Vec::new();
    for k in 0..traces {
        let sim = ChannelSimulator::open_lab(7 + k as u64);
        // Quarter-circle of radius 1.5 m at 1 m/s: 90° of turning over
        // 2.36 m of travel.
        let traj = arc(
            Point2::new(0.0, 2.0),
            1.5,
            0.4 * k as f64,
            std::f64::consts::FRAC_PI_2,
            1.0,
            fs,
        );
        let dense = env::record(&sim, &geo, &traj, 400 + k as u64, LossModel::None, None);
        let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
            .unwrap()
            .analyze(&dense)
            .unwrap();
        dist_err.push((est.total_distance() - traj.total_distance()).abs());
        rot_captured.push(est.total_rotation().abs().to_degrees());
    }

    report.row(
        "distance error along the arc",
        ErrorStats::of(&dist_err).fmt_cm(),
    );
    let mean_rot = rot_captured.iter().sum::<f64>() / rot_captured.len() as f64;
    report.row(
        "rotation sensed (truth 90° of turning)",
        format!("{mean_rot:.1}° — the turn goes unseen"),
    );
    report.note(
        "the arc is tracked as a sequence of translation directions (the \
         heading steps around the circle), so the position trace bends \
         correctly even though the reported rotating angle stays ~0"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn distance_survives_rotation_missed() {
        let r = super::run(true);
        let dist = &r.rows[0].1;
        let median: f64 = dist
            .split("median ")
            .nth(1)
            .unwrap()
            .split(" cm")
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(median < 30.0, "arc distance error {median} cm");
        let rot: f64 = r.rows[1].1.split('°').next().unwrap().parse().unwrap();
        assert!(rot < 45.0, "swinging turn largely unseen: {rot}°");
    }
}
