//! One module per reproduced figure of the paper's evaluation (§6), plus
//! the ablation studies. Every module exposes `run(fast: bool) -> Report`.

pub mod ablations;
pub mod fault_tolerance;
pub mod fig04_trrs_resolution;
pub mod fig05_alignment_matrix;
pub mod fig06_deviated_retracing;
pub mod fig07_movement_detection;
pub mod fig08_peak_tracking;
pub mod fig10_floorplan;
pub mod fig11_distance_accuracy;
pub mod fig12_heading_accuracy;
pub mod fig13_rotation_accuracy;
pub mod fig14_ap_location;
pub mod fig15_accumulation;
pub mod fig16_sampling_rate;
pub mod fig17_virtual_antennas;
pub mod fig18_handwriting;
pub mod fig19_gestures;
pub mod fig20_indoor_tracking;
pub mod fig21_sensor_fusion;
pub mod limitation_swinging;
pub mod robustness_dynamics;
