//! §7 — fault tolerance of the streaming pipeline under CSI loss.
//!
//! Paper (text, no figure): RIM "can tolerate packet loss to a certain
//! extent by interpolation"; §7 warns that contended channels cause
//! bursty loss. This experiment sweeps loss severity on the open-lab
//! line trajectory and measures how the gap-aware streaming front-end
//! degrades: distance error, time spent in degraded mode, and mean
//! segment confidence.

use crate::env::{self, linear_array};
use crate::report::{ErrorStats, Report};
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::stream::{RimStream, StreamAggregate};
use rim_csi::{synced_from_recording, CsiRecorder, LossModel, RecorderConfig};

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "§7",
        "Fault tolerance under CSI loss (streaming)",
        "loss is tolerated by interpolation up to a point; beyond it the \
         stream degrades gracefully — split segments and lowered \
         confidence, never a panic or runaway estimate",
    );
    let fs = env::SAMPLE_RATE;
    let geo = linear_array();
    let traces = if fast { 2 } else { 5 };
    let severities: &[(&str, LossModel)] = &[
        ("clean", LossModel::None),
        ("iid 10%", LossModel::Iid { p: 0.1 }),
        ("iid 25%", LossModel::Iid { p: 0.25 }),
        (
            "bursty 30%",
            LossModel::GilbertElliott {
                p_enter_bad: 0.05,
                p_exit_bad: 0.2,
                loss_good: 0.05,
                loss_bad: 1.0,
            },
        ),
    ];

    for &(label, model) in severities {
        let mut errors = Vec::new();
        let mut degraded_time = 0.0;
        let mut confidence = Vec::new();
        let mut total_time = 0.0;
        for k in 0..traces {
            let sim = ChannelSimulator::open_lab(7 + k as u64);
            let traj = line(
                env::lab_start(k),
                0.0,
                2.0,
                1.0,
                fs,
                OrientationMode::FollowPath,
            );
            let clean = CsiRecorder::new(
                &sim,
                env::device_for(&geo),
                RecorderConfig {
                    sanitize: true,
                    seed: 300 + k as u64,
                },
            )
            .record(&traj);
            let lossy = match model {
                LossModel::None => clean,
                m => clean.degrade(m, 900 + k as u64),
            };
            let mut stream =
                RimStream::new(geo.clone(), env::rim_config(fs, 0.3)).expect("valid config");
            let mut agg = StreamAggregate::default();
            for sample in synced_from_recording(&lossy) {
                agg.absorb(&stream.ingest(sample).expect("ingest never errors"));
            }
            agg.absorb(&stream.finish());
            errors.push((agg.total_distance() - traj.total_distance()).abs());
            degraded_time += stream.degraded_time_s();
            total_time += lossy.n_samples() as f64 / fs;
            confidence.push(agg.mean_confidence());
        }
        let mean_conf = confidence.iter().sum::<f64>() / confidence.len() as f64;
        report.row(
            label,
            format!(
                "{}, degraded {:.0}% of time, mean confidence {:.2}",
                ErrorStats::of(&errors).fmt_cm(),
                100.0 * degraded_time / total_time,
                mean_conf
            ),
        );
    }
    report.note(
        "loss is injected post hoc on the clean capture (whole-device \
         Gilbert–Elliott / i.i.d. drops), so every severity sees the same \
         channel realisations",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn degradation_is_graceful_not_catastrophic() {
        let r = super::run(true);
        let median = |value: &str| -> f64 {
            value
                .split("median ")
                .nth(1)
                .unwrap()
                .split(" cm")
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let clean = median(&r.rows[0].1);
        for (label, value) in &r.rows {
            let m = median(value);
            // Bounded degradation: even 30% bursty loss stays within
            // 60 cm median on a 2 m trajectory (clean is a few cm).
            assert!(m < 60.0, "{label}: median {m} cm (clean {clean} cm)");
        }
    }
}
