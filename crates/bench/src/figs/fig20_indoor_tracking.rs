//! Fig. 20 — indoor tracking by sole RIM.
//!
//! Paper: two long floor-scale traces (~36 m and ~76 m) containing
//! *sideway* movements are tracked accurately with no significant
//! accumulation — motions that gyroscope+magnetometer cannot even
//! represent because the device never turns.

use crate::env::{self, hexagonal_array};
use crate::report::Report;
use rim_channel::trajectory::{polyline, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::LossModel;
use rim_dsp::geom::Point2;
use rim_tracking::metrics::mean_projection_error;

/// The two routes (waypoints in office coordinates, both with sideway
/// legs — heading changes while orientation stays fixed).
fn routes(fast: bool) -> Vec<(&'static str, Vec<Point2>)> {
    let trace1 = vec![
        Point2::new(5.0, 9.5),
        Point2::new(19.0, 9.5),
        Point2::new(19.0, 13.0), // sideway up
        Point2::new(9.0, 13.0),  // backwards
        Point2::new(9.0, 17.5),  // sideway up
        Point2::new(16.0, 17.5),
    ];
    let trace2 = vec![
        Point2::new(4.0, 9.0),
        Point2::new(26.0, 9.0),
        Point2::new(26.0, 13.5), // sideway
        Point2::new(6.0, 13.5),
        Point2::new(6.0, 18.0), // sideway
        Point2::new(30.0, 18.0),
        Point2::new(30.0, 13.8),
        Point2::new(21.0, 13.8),
    ];
    if fast {
        vec![("trace 1", trace1)]
    } else {
        vec![("trace 1 (~36 m)", trace1), ("trace 2 (~76 m)", trace2)]
    }
}

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 20",
        "Indoor tracking by sole RIM",
        "36 m and 76 m traces with sideway moves tracked without significant \
         accumulated error",
    );
    // Long traces: run at 100 Hz (sufficient for 1 m/s per Fig. 16) to
    // bound memory and time.
    let fs = 100.0;
    let geo = hexagonal_array();
    let sim = ChannelSimulator::office(0, 11);

    for (idx, (name, wps)) in routes(fast).into_iter().enumerate() {
        let traj = polyline(&wps, 1.0, fs, OrientationMode::Fixed(0.0));
        let truth: Vec<Point2> = traj.poses().iter().map(|p| p.pos).collect();
        let dense = env::record(&sim, &geo, &traj, 90 + idx as u64, LossModel::None, None);
        let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
            .unwrap()
            .analyze(&dense)
            .unwrap();
        let track = est.trajectory(wps[0], 0.0);
        let end_err = track.last().unwrap().distance(*truth.last().unwrap());
        report.row(
            name.to_string(),
            format!(
                "length {:.1} m, distance err {:.2} m, mean track err {:.2} m, endpoint err {:.2} m",
                traj.total_distance(),
                (est.total_distance() - traj.total_distance()).abs(),
                mean_projection_error(&track, &truth),
                end_err
            ),
        );
    }
    report.note(
        "sideway legs are tracked because RIM measures heading directly; \
         orientation sensors cannot see these direction changes (no turning)"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn long_trace_tracks() {
        let r = super::run(true);
        let row = &r.rows[0].1;
        let track_err: f64 = row
            .split("mean track err ")
            .nth(1)
            .unwrap()
            .split(" m")
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(track_err < 2.0, "mean track error {track_err} m over ~36 m");
    }
}
