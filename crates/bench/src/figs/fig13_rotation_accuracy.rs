//! Fig. 13 — accuracy of rotating angle.
//!
//! Paper: rotating the hexagonal array by 30°–360°, RIM achieves ~30.1°
//! median error (≈1.3 cm of arc), limited by the antenna separation being
//! comparable to the array radius; the gyroscope is better at this task.

use crate::env::{self, hexagonal_array};
use crate::report::{ErrorStats, Report};
use rim_channel::trajectory::rotate_in_place;
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::LossModel;
use rim_sensors::{gyro_rotation_angle, ImuConfig, SimulatedImu};

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 13",
        "Accuracy of rotating angle",
        "RIM median error 30.1° (17.6 % relative, ≈1.3 cm of arc); gyroscope \
         is markedly better at in-place rotation",
    );
    let fs = env::SAMPLE_RATE;
    let geo = hexagonal_array();
    let angular_speed = std::f64::consts::PI; // 180°/s manual spin

    // The rotation workload needs a wider lag window (slow tangential
    // speed) and a longer movement-detection lag.
    let mut config = env::rim_config(fs, 0.07);
    config.movement.lag = (0.15 * fs) as usize;
    config.movement.threshold = 0.9;
    config.min_segment_s = 0.12;

    let angles: Vec<f64> = if fast {
        vec![90.0, 180.0, 360.0]
    } else {
        vec![60.0, 90.0, 120.0, 150.0, 180.0, 270.0, 360.0]
    };
    let reps = if fast { 2 } else { 5 };

    let mut rim_errors = Vec::new();
    let mut gyro_errors = Vec::new();
    for (ai, &angle) in angles.iter().enumerate() {
        let mut rim_per_angle = Vec::new();
        for rep in 0..reps {
            let sign = if rep % 2 == 0 { 1.0 } else { -1.0 };
            let truth = sign * angle.to_radians();
            let sim = ChannelSimulator::open_lab(7 + rep as u64);
            let traj = rotate_in_place(
                env::lab_start(ai + rep),
                0.3 * rep as f64,
                truth,
                angular_speed,
                fs,
            );
            let dense = env::record(
                &sim,
                &geo,
                &traj,
                (ai * 10 + rep) as u64,
                LossModel::None,
                None,
            );
            let est = Rim::new(geo.clone(), config.clone())
                .unwrap()
                .analyze(&dense)
                .unwrap();
            let err = (est.total_rotation() - truth).abs();
            rim_errors.push(err);
            rim_per_angle.push(err.to_degrees());

            let imu =
                SimulatedImu::new(ImuConfig::consumer(), (ai * 10 + rep) as u64).sample(&traj);
            gyro_errors.push((gyro_rotation_angle(&imu) - truth).abs());
        }
        let mean = rim_per_angle.iter().sum::<f64>() / rim_per_angle.len() as f64;
        report.row(
            format!("RIM error @ {angle:>4.0}°"),
            format!("{mean:.1}° mean over {reps} reps"),
        );
    }

    report.row("RIM overall", ErrorStats::of(&rim_errors).fmt_deg());
    report.row("gyroscope overall", ErrorStats::of(&gyro_errors).fmt_deg());
    // Arc-length view (paper: 30.1° ≈ 1.3 cm of arc at r = λ/2).
    let median_arc = rim_dsp::stats::median(&rim_errors) * env::SPACING;
    report.row(
        "RIM median error as arc length",
        format!("{:.1} cm", median_arc * 100.0),
    );
    report.note(
        "our simulated alignment is cleaner than the paper's hardware, so RIM's \
         rotation error lands below the paper's 30.1°; the qualitative claim \
         (rotation is RIM's weakest measurement; gyros excel at it) is assessed \
         by the rows above"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn rotations_measured_within_paper_error() {
        let r = super::run(true);
        let overall = r.rows.iter().find(|(l, _)| l == "RIM overall").unwrap();
        let median: f64 = overall
            .1
            .split("median ")
            .nth(1)
            .unwrap()
            .split('°')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            median < 35.0,
            "RIM rotation median {median}° within paper's 30.1°"
        );
    }
}
