//! Fig. 4 — spatial resolution of the TRRS.
//!
//! Paper: (a) self-TRRS of a constantly moving antenna "drops immediately
//! (significantly by up to 0.3) when the antenna moves for a few
//! millimeters, and monotonously decreases within a range of about 1 cm";
//! (b) the decay holds for cross-antenna TRRS, whose peak sits at the
//! antenna separation, with missing values under packet loss.

use crate::env::{self, linear_array};
use crate::report::Report;
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::trrs::{trrs_massive, NormSnapshot};
use rim_csi::LossModel;

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 4",
        "Spatial resolution of TRRS",
        "self-TRRS drops by ~0.3 within a few mm, decays monotonically over ~1 cm; \
         cross-TRRS peaks at the antenna separation (25.8 mm)",
    );
    // Slow, finely-sampled motion: 0.1 m/s at 200 Hz = 0.5 mm/sample.
    let fs = env::SAMPLE_RATE;
    let speed = 0.1;
    let geo = linear_array();
    let n_seeds = if fast { 2 } else { 5 };
    let v = 30;

    let mm_lags: Vec<usize> = vec![0, 2, 4, 8, 12, 20, 40, 80];
    let mut self_curve = vec![0.0; mm_lags.len()];
    let mut cross_peak_mm = Vec::new();
    let mut count = 0usize;

    for seed in 0..n_seeds {
        let sim = ChannelSimulator::open_lab(7 + seed);
        let traj = line(
            env::lab_start(seed as usize),
            0.0,
            0.25,
            speed,
            fs,
            OrientationMode::FollowPath,
        );
        let dense = env::record(&sim, &geo, &traj, seed, LossModel::None, None);
        let series: Vec<Vec<NormSnapshot>> = dense
            .antennas
            .iter()
            .map(|s| NormSnapshot::series(s))
            .collect();
        let t0 = dense.n_samples() / 3;
        // (a) Self-TRRS vs displacement, averaged over the 3 antennas.
        for (k, &lag) in mm_lags.iter().enumerate() {
            let mut acc = 0.0;
            for a in &series {
                acc += trrs_massive(a, a, t0 + lag, t0, v);
            }
            self_curve[k] += acc / series.len() as f64;
        }
        count += 1;
        // (b) Cross-TRRS between adjacent antennas: the peak lag maps to
        // the separation distance. Antenna 0 trails antenna 1 (motion
        // along +x), so κ(P_0(t), P_1(t − l)) peaks at l ≈ Δd/v·fs.
        let mut best = (0usize, 0.0f64);
        for lag in 0..160usize {
            let k = trrs_massive(&series[0], &series[1], t0 + lag, t0, v);
            if k > best.1 {
                best = (lag, k);
            }
        }
        cross_peak_mm.push(best.0 as f64 * speed / fs * 1000.0);
    }
    for v in &mut self_curve {
        *v /= count as f64;
    }

    let dist_mm: Vec<f64> = mm_lags
        .iter()
        .map(|&l| l as f64 * speed / fs * 1000.0)
        .collect();
    let lambda = 2.0 * env::SPACING;
    for (d, k) in dist_mm.iter().zip(&self_curve) {
        report.row(
            format!("self-TRRS @ {d:>5.1} mm"),
            format!(
                "{k:.3} (isotropic J0² theory: {:.3})",
                rim_dsp::bessel::theory_trrs(d / 1000.0, lambda)
            ),
        );
    }
    let drop_5mm = self_curve[0] - self_curve[3];
    report.row("drop within 5 mm", format!("{drop_5mm:.2}"));
    let monotone = self_curve.windows(2).take(5).all(|w| w[1] <= w[0] + 0.02);
    report.row("monotone decay over first cm", format!("{monotone}"));
    let mean_peak = cross_peak_mm.iter().sum::<f64>() / cross_peak_mm.len() as f64;
    report.row(
        "cross-TRRS peak location",
        format!("{mean_peak:.1} mm (antenna separation 25.8 mm)"),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_in_fast_mode() {
        let r = super::run(true);
        assert!(!r.rows.is_empty());
        // The self-TRRS at zero displacement must be ≈ 1.
        let first = &r.rows[0].1;
        let v: f64 = first.split(' ').next().unwrap().parse().unwrap();
        assert!(v > 0.95, "self-TRRS at 0 mm: {v}");
    }
}
