//! Fig. 17 — impact of the virtual antenna number.
//!
//! Paper: raising V from 1 to 5 drops the median distance error from
//! ~30 cm to ~10 cm; V = 100 reaches 6.6 cm; "a number larger than 30
//! should suffice for a sampling rate of 200 Hz".

use crate::env::{self, linear_array};
use crate::report::{ErrorStats, Report};
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::{HardwareProfile, LossModel};

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 17",
        "Impact of virtual antenna number",
        "median error ~30 cm at V=1, ~10 cm at V=5, 6.6 cm at V=100",
    );
    let fs = env::SAMPLE_RATE;
    let geo = linear_array();
    let traces = if fast { 3 } else { 6 };

    // A noisier front-end makes the value of massive averaging visible
    // (with a pristine channel even V = 1 can align).
    let profile = HardwareProfile {
        snr_db: 8.0,
        sto_slope_std: 0.15,
        agc_std: 0.08,
        ..HardwareProfile::commodity()
    };
    let mut recordings = Vec::new();
    let mut truths = Vec::new();
    for k in 0..traces {
        let sim = ChannelSimulator::open_lab(7 + k as u64);
        let traj = line(
            env::lab_start(k),
            0.0,
            4.0,
            1.0,
            fs,
            OrientationMode::FollowPath,
        );
        truths.push(traj.total_distance());
        // 15 % packet loss on top: bridging interpolated samples is
        // precisely what the virtual-massive average buys (paper Fig. 4b
        // shows the missing-value case).
        recordings.push(env::record(
            &sim,
            &geo,
            &traj,
            71 + k as u64,
            LossModel::Iid { p: 0.15 },
            Some(profile),
        ));
    }

    for v in [1usize, 5, 10, 50, 100] {
        let mut errors = Vec::new();
        for (rec, &truth) in recordings.iter().zip(&truths) {
            let mut config = env::rim_config(fs, 0.3);
            config.alignment.virtual_antennas = v;
            let est = Rim::new(geo.clone(), config).unwrap().analyze(rec).unwrap();
            errors.push((est.total_distance() - truth).abs());
        }
        report.row(format!("V = {v:>3}"), ErrorStats::of(&errors).fmt_cm());
    }
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn more_virtual_antennas_help() {
        let r = super::run(true);
        let median = |i: usize| -> f64 {
            r.rows[i]
                .1
                .split("median ")
                .nth(1)
                .unwrap()
                .split(" cm")
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let v1 = median(0);
        let v50 = median(3);
        assert!(v50 <= v1, "V=50 ({v50} cm) no worse than V=1 ({v1} cm)");
    }
}
