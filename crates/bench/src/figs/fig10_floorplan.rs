//! Fig. 10 — the testbed environment.
//!
//! Renders the modelled 36.5 m × 28 m office floor (walls, service cores,
//! pillars) with the seven AP locations, and reports the LOS/NLOS
//! character of each AP towards the central open area — the map every
//! other experiment runs on.

use crate::report::Report;
use rim_channel::floorplan::office_floorplan;
use rim_dsp::geom::{Point2, Segment};

/// ASCII-renders the floorplan.
pub fn render_map(width: usize, height: usize) -> String {
    let (fp, aps) = office_floorplan();
    let (lo, hi) = fp.bounds().expect("walls exist");
    let sx = (hi.x - lo.x) / (width - 1) as f64;
    let sy = (hi.y - lo.y) / (height - 1) as f64;
    let mut grid = vec![vec![b' '; width]; height];
    // Rasterise walls by sampling along each segment.
    for wall in fp.walls() {
        let len = wall.segment.length();
        let steps = (len / sx.min(sy)).ceil() as usize + 1;
        for s in 0..=steps {
            let t = s as f64 / steps as f64;
            let p = wall.segment.a + wall.segment.dir() * t;
            let cx = ((p.x - lo.x) / sx).round() as usize;
            let cy = ((p.y - lo.y) / sy).round() as usize;
            if cx < width && cy < height {
                grid[height - 1 - cy][cx] = b'#';
            }
        }
    }
    for (k, ap) in aps.iter().enumerate() {
        let cx = ((ap.x - lo.x) / sx).round() as usize;
        let cy = ((ap.y - lo.y) / sy).round() as usize;
        if cx < width && cy < height {
            grid[height - 1 - cy][cx] = b'0' + k as u8;
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push_str(std::str::from_utf8(&row).unwrap());
        out.push('\n');
    }
    out
}

/// Runs the experiment (map + AP characterisation).
pub fn run(_fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 10",
        "Testbed environment",
        "36.5 m × 28 m office floor (>1,000 m²), one AP tested at 7 marked \
         locations; #0 is the far-corner through-the-walls default",
    );
    let (fp, aps) = office_floorplan();
    let (lo, hi) = fp.bounds().unwrap();
    report.row(
        "floor dimensions",
        format!(
            "{:.1} m × {:.1} m = {:.0} m²",
            hi.x - lo.x,
            hi.y - lo.y,
            (hi.x - lo.x) * (hi.y - lo.y)
        ),
    );
    report.row("walls modelled", format!("{}", fp.len()));
    let centre = Point2::new(15.0, 13.0);
    for (k, ap) in aps.iter().enumerate() {
        let crossings = fp.walls_crossed(*ap, centre).len();
        report.row(
            format!("AP #{k} at ({:.1}, {:.1})", ap.x, ap.y),
            format!(
                "{} to the open area ({} walls crossed), {:.1} m away",
                if crossings == 0 { "LOS" } else { "NLOS" },
                crossings,
                Segment::new(*ap, centre).length()
            ),
        );
    }
    report.note("ASCII map printed by the fig10_floorplan binary".to_string());
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn map_renders_walls_and_aps() {
        let map = super::render_map(73, 28);
        assert!(map.contains('#'), "walls visible");
        for c in ['0', '1', '2', '3', '4', '5', '6'] {
            assert!(map.contains(c), "AP {c} visible");
        }
    }

    #[test]
    fn report_characterises_aps() {
        let r = super::run(true);
        assert!(r.rows.iter().any(|(l, _)| l.starts_with("AP #0")));
        let ap0 = &r
            .rows
            .iter()
            .find(|(l, _)| l.starts_with("AP #0"))
            .unwrap()
            .1;
        assert!(ap0.contains("NLOS"), "far corner is NLOS: {ap0}");
    }
}
