//! Fig. 14 — coverage and the impact of AP location.
//!
//! Paper: moving the single AP across six locations (LOS and through
//! multiple walls), RIM keeps a median distance error below 10 cm
//! everywhere — "truly multipath resilient … works wherever there are
//! WiFi signals".

use crate::env::{self, linear_array};
use crate::report::{ErrorStats, Report};
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::LossModel;
use rim_dsp::geom::Point2;

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 14",
        "Impact of AP location",
        "median distance error < 10 cm for every AP location #1–#6",
    );
    let fs = env::SAMPLE_RATE;
    let geo = linear_array();
    let traces = if fast { 2 } else { 4 };

    for ap in 1..=6usize {
        let sim = ChannelSimulator::office(ap, 11);
        let mut errors = Vec::new();
        for k in 0..traces {
            // Distance measurements in the middle open spaces (paper).
            let start = Point2::new(8.0 + 4.0 * k as f64, 9.5 + 2.5 * (k % 3) as f64);
            let heading = if k % 2 == 0 {
                0.0
            } else {
                std::f64::consts::PI
            };
            let traj = line(
                start,
                heading,
                5.0,
                1.0,
                fs,
                OrientationMode::Fixed(heading),
            );
            let dense = env::record(
                &sim,
                &geo,
                &traj,
                (ap * 10 + k) as u64,
                LossModel::None,
                None,
            );
            let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
                .unwrap()
                .analyze(&dense)
                .unwrap();
            errors.push((est.total_distance() - traj.total_distance()).abs());
        }
        let stats = ErrorStats::of(&errors);
        let los = sim
            .tracer()
            .floorplan()
            .is_los(sim.ap().pos, Point2::new(15.0, 11.0));
        report.row(
            format!("AP loc. #{ap} ({})", if los { "LOS-ish" } else { "NLOS" }),
            stats.fmt_cm(),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_location_under_20cm_median() {
        let r = super::run(true);
        for (label, value) in &r.rows {
            let median: f64 = value
                .split("median ")
                .nth(1)
                .unwrap()
                .split(" cm")
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(median < 20.0, "{label}: median {median} cm");
        }
    }
}
