//! Ablation studies of RIM's design choices (DESIGN.md inventory):
//!
//! * DP peak tracking vs naive per-column argmax (§4.2's motivation),
//! * phase sanitation on vs off (§3.2 footnote 3),
//! * TX-antenna averaging: 3 TX vs 1 TX (Eqn. 3),
//! * parallel-group matrix averaging on vs off (§4.2),
//! * RIM's virtual antenna alignment vs the WiBall-style single-antenna
//!   TRRS-decay estimator (§7),
//! * effective bandwidth: 114-subcarrier Atheros CSI vs the Intel 5300's
//!   30 grouped subcarriers.

use crate::env::{self, linear_array};
use crate::report::{ErrorStats, Report};
use rim_array::ArrayGeometry;
use rim_channel::trajectory::{line, OrientationMode, Trajectory};
use rim_channel::ChannelSimulator;
use rim_core::alignment::{base_cross_trrs_range, virtual_average};
use rim_core::tracking_dp::{track_peaks, DpConfig};
use rim_core::trrs::NormSnapshot;
use rim_core::Rim;
use rim_csi::recorder::DenseCsi;
use rim_csi::{CsiRecorder, DeviceConfig, HardwareProfile, LossModel, RecorderConfig};

/// Runs the ablations.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Ablations",
        "Design-choice ablations",
        "each RIM design choice should visibly improve accuracy/robustness",
    );
    let fs = env::SAMPLE_RATE;
    let geo = linear_array();
    let traces = if fast { 3 } else { 6 };
    let truth_m = 3.0;

    // Shared noisy workload (stress where the design choices matter).
    let make_traj = |k: usize| -> Trajectory {
        line(
            env::lab_start(k),
            0.0,
            truth_m,
            1.0,
            fs,
            OrientationMode::FollowPath,
        )
    };
    let noisy = HardwareProfile::noisy();

    // --- DP tracking vs per-column argmax on the same matrices.
    let mut dp_err = Vec::new();
    let mut argmax_err = Vec::new();
    for k in 0..traces {
        let sim = ChannelSimulator::open_lab(7 + k as u64);
        let traj = make_traj(k);
        // Harsh regime: this is where robust peak tracking matters.
        let stress = HardwareProfile {
            snr_db: 9.0,
            sto_slope_std: 0.15,
            ..HardwareProfile::noisy()
        };
        let dense = env::record(
            &sim,
            &geo,
            &traj,
            300 + k as u64,
            LossModel::Iid { p: 0.25 },
            Some(stress),
        );
        let series: Vec<Vec<NormSnapshot>> = dense
            .antennas
            .iter()
            .map(|s| NormSnapshot::series(s))
            .collect();
        let n = dense.n_samples();
        let b = base_cross_trrs_range(&series[0], &series[1], 26, 0, n);
        // Lightly averaged matrix (V = 5): isolates the tracker's own
        // robustness from what Eqn. 4's massive averaging provides — with
        // V = 30 the matrix is clean enough that any peak picker works.
        let m = virtual_average(&b, 5);
        let dp = track_peaks(&m, DpConfig::default());
        let am_lags: Vec<isize> = m.column_peaks().iter().map(|&(l, _)| l).collect();
        // Compare the tracked lag paths against the true alignment delay
        // (Δd/v·fs) over the steady interior — the quantity §4.2's tracker
        // exists to recover. (Distance integrates over the shared
        // quantisation bias and hides the difference.)
        let true_lag = env::SPACING / 1.0 * fs;
        let rms = |lags: &[isize]| -> f64 {
            let inner = &lags[lags.len() / 6..5 * lags.len() / 6];
            (inner
                .iter()
                .map(|&l| (l as f64 - true_lag).powi(2))
                .sum::<f64>()
                / inner.len() as f64)
                .sqrt()
        };
        dp_err.push(rms(&dp.lags));
        argmax_err.push(rms(&am_lags));
    }
    report.row(
        "DP tracking lag RMS (9 dB, 25% loss)",
        format!(
            "median {:.2} samples (n={})",
            rim_dsp::stats::median(&dp_err),
            dp_err.len()
        ),
    );
    report.row(
        "per-column argmax lag RMS (same data)",
        format!(
            "median {:.2} samples (n={})",
            rim_dsp::stats::median(&argmax_err),
            argmax_err.len()
        ),
    );

    // --- Sanitation on vs off (full pipeline distance).
    for sanitize in [true, false] {
        let mut errs = Vec::new();
        for k in 0..traces {
            let sim = ChannelSimulator::open_lab(7 + k as u64);
            let traj = make_traj(k);
            let device = DeviceConfig::single_nic(geo.offsets().to_vec());
            let dense: DenseCsi = CsiRecorder::new(
                &sim,
                device,
                RecorderConfig {
                    sanitize,
                    seed: 310 + k as u64,
                },
            )
            .record(&traj)
            .interpolated()
            .unwrap();
            let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
                .unwrap()
                .analyze(&dense)
                .unwrap();
            errs.push((est.total_distance() - truth_m).abs());
        }
        report.row(
            format!("sanitation {}", if sanitize { "on" } else { "off" }),
            ErrorStats::of(&errs).fmt_cm(),
        );
    }

    // --- TX diversity: 3 TX antennas vs 1 (drop the others after
    // recording). Spatial diversity pays off when each single link is
    // marginal, so this runs at low SNR.
    for n_tx in [3usize, 1] {
        let mut errs = Vec::new();
        for k in 0..traces {
            let sim = ChannelSimulator::open_lab(7 + k as u64);
            let traj = make_traj(k);
            let low_snr = HardwareProfile {
                snr_db: 7.0,
                ..HardwareProfile::noisy()
            };
            let mut dense = env::record(
                &sim,
                &geo,
                &traj,
                320 + k as u64,
                LossModel::None,
                Some(low_snr),
            );
            if n_tx == 1 {
                for ant in &mut dense.antennas {
                    for snap in ant {
                        snap.per_tx.truncate(1);
                    }
                }
            }
            let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
                .unwrap()
                .analyze(&dense)
                .unwrap();
            errs.push((est.total_distance() - truth_m).abs());
        }
        report.row(
            format!("{n_tx} TX antenna(s)"),
            ErrorStats::of(&errs).fmt_cm(),
        );
    }

    // --- Parallel-group averaging: hexagonal array vs a degraded variant
    // using only one pair per direction (simulated by a 2-antenna array
    // on the motion axis).
    let hex = ArrayGeometry::hexagonal(env::SPACING);
    let pair_only = ArrayGeometry::linear(2, env::SPACING);
    for (label, g) in [
        ("hexagonal (groups averaged)", &hex),
        ("single pair", &pair_only),
    ] {
        let mut errs = Vec::new();
        for k in 0..traces {
            let sim = ChannelSimulator::open_lab(7 + k as u64);
            let traj = make_traj(k);
            let dense = env::record(&sim, g, &traj, 330 + k as u64, LossModel::None, Some(noisy));
            let est = Rim::new((*g).clone(), env::rim_config(fs, 0.3))
                .unwrap()
                .analyze(&dense)
                .unwrap();
            errs.push((est.total_distance() - truth_m).abs());
        }
        report.row(label.to_string(), ErrorStats::of(&errs).fmt_cm());
    }

    // --- RIM vs WiBall-style single-antenna estimation (§7).
    {
        let mut rim_errs = Vec::new();
        let mut wiball_errs = Vec::new();
        for k in 0..traces {
            let sim = ChannelSimulator::open_lab(7 + k as u64);
            let traj = make_traj(k);
            let dense = env::record(&sim, &geo, &traj, 340 + k as u64, LossModel::None, None);
            let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
                .unwrap()
                .analyze(&dense)
                .unwrap();
            rim_errs.push((est.total_distance() - truth_m).abs());
            // WiBall: single antenna (the middle one), same recording.
            let series = rim_core::trrs::NormSnapshot::series(&dense.antennas[1]);
            let wcfg = rim_core::wiball::WiballConfig::for_sample_rate(fs);
            let speeds = rim_core::wiball::speed_series(&series, &wcfg, fs);
            // Gate to the moving span RIM detected (WiBall has no movement
            // detector of its own here).
            let gated: Vec<f64> = speeds
                .iter()
                .zip(&est.moving)
                .map(|(&v, &m)| if m { v } else { 0.0 })
                .collect();
            let d = rim_core::wiball::integrate_distance(&gated, fs);
            wiball_errs.push((d - truth_m).abs());
        }
        report.row(
            "RIM alignment (3 antennas)",
            ErrorStats::of(&rim_errs).fmt_cm(),
        );
        report.row(
            "WiBall-style decay (1 antenna, §7)",
            ErrorStats::of(&wiball_errs).fmt_cm(),
        );
    }

    // --- Effective bandwidth: keep every subcarrier vs the Intel 5300's
    // 30 grouped ones (every 4th index).
    {
        for (label, keep_every) in [
            ("114 subcarriers (Atheros)", 1usize),
            ("30 subcarriers (Intel 5300-like)", 4),
        ] {
            let mut errs = Vec::new();
            for k in 0..traces {
                let sim = ChannelSimulator::open_lab(7 + k as u64);
                let traj = make_traj(k);
                let mut dense = env::record(
                    &sim,
                    &geo,
                    &traj,
                    350 + k as u64,
                    LossModel::None,
                    Some(noisy),
                );
                if keep_every > 1 {
                    dense.subcarrier_indices = dense
                        .subcarrier_indices
                        .iter()
                        .step_by(keep_every)
                        .copied()
                        .collect();
                    for ant in &mut dense.antennas {
                        for snap in ant {
                            for cfr in &mut snap.per_tx {
                                *cfr = cfr.iter().step_by(keep_every).copied().collect();
                            }
                        }
                    }
                }
                let est = Rim::new(geo.clone(), env::rim_config(fs, 0.3))
                    .unwrap()
                    .analyze(&dense)
                    .unwrap();
                errs.push((est.total_distance() - truth_m).abs());
            }
            report.row(label.to_string(), ErrorStats::of(&errs).fmt_cm());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn dp_beats_argmax_under_stress() {
        let r = super::run(true);
        let median = |label: &str| -> f64 {
            r.rows
                .iter()
                .find(|(l, _)| l.starts_with(label))
                .unwrap()
                .1
                .split("median ")
                .nth(1)
                .unwrap()
                .split(" samples")
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let dp = median("DP tracking");
        let am = median("per-column argmax");
        assert!(
            dp <= am + 0.05,
            "DP ({dp}) at least as good as argmax ({am}) in lag RMS"
        );
    }
}
