//! Fig. 19 — gesture recognition.
//!
//! Paper: 3 users × 4 gestures × left/right hand × 20 repetitions = 480
//! trials; 96.25 % detected, every detected gesture correctly classified,
//! 23 misses and only 5 false triggers.

use crate::env::{self, l_array};
use crate::report::Report;
use rim_channel::trajectory::dwell;
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::LossModel;
use rim_dsp::geom::Point2;
use rim_tracking::gesture::{detect_gesture, gesture_trajectory, Gesture, GestureConfig};

/// Per-user style: (speed, amplitude); hands shift the start pose.
const USERS: [(f64, f64); 3] = [(0.45, 0.20), (0.55, 0.17), (0.40, 0.24)];

/// Runs the experiment.
pub fn run(fast: bool) -> Report {
    let mut report = Report::new(
        "Fig. 19",
        "Gesture recognition",
        "96.25 % detection over 480 trials, zero misclassification among \
         detected, false triggers rarer than misses",
    );
    let fs = env::SAMPLE_RATE;
    let geo = l_array();
    let det_cfg = GestureConfig::default();
    let reps = if fast { 2 } else { 10 };

    let mut total = 0usize;
    let mut detected = 0usize;
    let mut misclassified = 0usize;
    let mut seed = 100u64;
    for (u, &(speed, amp)) in USERS.iter().enumerate() {
        for hand in 0..2usize {
            let mut user_ok = 0usize;
            let mut user_n = 0usize;
            for gesture in Gesture::ALL {
                for rep in 0..reps {
                    seed += 1;
                    let sim = ChannelSimulator::open_lab(7 + (seed % 5));
                    let start = Point2::new(
                        0.3 + 0.15 * hand as f64 + 0.02 * rep as f64,
                        1.5 + 0.2 * u as f64,
                    );
                    let traj = gesture_trajectory(gesture, start, amp, speed, fs);
                    let dense = env::record(&sim, &geo, &traj, seed, LossModel::None, None);
                    let est = Rim::new(geo.clone(), env::rim_config(fs, 0.2))
                        .unwrap()
                        .analyze(&dense)
                        .unwrap();
                    total += 1;
                    user_n += 1;
                    match detect_gesture(&est, &det_cfg) {
                        Some(g) if g == gesture => {
                            detected += 1;
                            user_ok += 1;
                        }
                        Some(_) => misclassified += 1,
                        None => {}
                    }
                }
            }
            report.row(
                format!(
                    "user {} / hand {}",
                    u + 1,
                    if hand == 0 { "L" } else { "R" }
                ),
                format!(
                    "{:.0} % ({user_ok}/{user_n})",
                    100.0 * user_ok as f64 / user_n as f64
                ),
            );
        }
    }

    // False triggers: ambient periods with no gesture (static device,
    // with a walking human nearby would be the worst case; here the
    // front-end noise alone must not trigger).
    let null_trials = if fast { 6 } else { 24 };
    let mut false_triggers = 0usize;
    for k in 0..null_trials {
        let sim = ChannelSimulator::open_lab(7 + (k % 5) as u64);
        let traj = dwell(env::lab_start(k), 0.0, 1.2, fs);
        let dense = env::record(&sim, &geo, &traj, 500 + k as u64, LossModel::None, None);
        let est = Rim::new(geo.clone(), env::rim_config(fs, 0.2))
            .unwrap()
            .analyze(&dense)
            .unwrap();
        if detect_gesture(&est, &det_cfg).is_some() {
            false_triggers += 1;
        }
    }

    report.row(
        "overall detection",
        format!(
            "{:.2} % ({detected}/{total})",
            100.0 * detected as f64 / total as f64
        ),
    );
    report.row("misclassified among detected", format!("{misclassified}"));
    report.row(
        "false triggers on idle traces",
        format!("{false_triggers}/{null_trials}"),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn detection_rate_is_high() {
        let r = super::run(true);
        let overall = r
            .rows
            .iter()
            .find(|(l, _)| l == "overall detection")
            .unwrap();
        let pct: f64 = overall.1.split(' ').next().unwrap().parse().unwrap();
        assert!(pct > 80.0, "detection {pct}%");
        let mis = r
            .rows
            .iter()
            .find(|(l, _)| l == "misclassified among detected")
            .unwrap();
        let m: usize = mis.1.parse().unwrap();
        assert!(m <= 2, "misclassifications {m}");
    }
}
