//! The serving benchmark behind `BENCH_serve.json`: a latency-vs-sessions
//! sweep through the full serving stack plus a high-concurrency soak.
//!
//! Every point drives loopback TCP clients through the readiness-driven
//! reactor, admission control, and the deadline-ordered cross-session
//! scheduler. Sessions are multiplexed over a small fixed set of client
//! connections (the wire protocol carries the session id per request), so
//! the soak point scales to a thousand concurrent sessions without a
//! thousand sockets or driver threads — mirroring how the server itself
//! holds its I/O thread count constant.
//!
//! Latencies are the server-side ingest→estimate measurements
//! ([`SessionManager::take_latencies`]): admission to analysed, in
//! microseconds. Client-side throttle backoff is *not* included, so the
//! percentiles describe what the admitted stream experiences — the same
//! quantity earlier revisions of this file reported in milliseconds.

use crate::env;
use rim_channel::trajectory::{dwell, line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_csi::sync::SyncedSample;
use rim_csi::{CsiRecorder, RecorderConfig};
use rim_dsp::geom::Point2;
use rim_serve::{Admit, Client, ServeConfig, Server, SessionManager};
use std::sync::Arc;

/// Ceiling on driver threads (and therefore client connections); sessions
/// beyond this share connections round-robin.
const MAX_DRIVERS: usize = 16;

/// Latency budget handed to admission control for every point, µs. The
/// predictor throttles ingest once the deadline scheduler would blow
/// this, which is what keeps the tails flat as sessions scale.
const LATENCY_BUDGET_US: u64 = 50_000;

/// Walk length for the soak point's trace — the shortest open-lab walk
/// whose segments close mid-stream (shorter walks only close at
/// `finish()`, which records no latency), so a thousand sessions stress
/// concurrency without inflating total sample volume.
const SOAK_WALK_M: f64 = 1.0;

/// Stationary tail appended to every trace. The movement watchdog
/// closes the open segment 2 s after motion stops, so a 2.25 s dwell
/// guarantees each session one mid-stream segment close — the
/// ingest→estimate latency measurement — with margin before the
/// stream ends (a dwell shorter than 2 s would defer the close to
/// `finish()` and leave the percentiles empty).
const DWELL_S: f64 = 2.25;

struct Point {
    sessions: usize,
    samples_per_session: usize,
    events: usize,
    wall_ms: f64,
    throughput_sps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

impl Point {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"sessions\": {}, \"samples_per_session\": {}, ",
                "\"samples_total\": {}, \"events\": {}, \"wall_ms\": {:.3}, ",
                "\"throughput_sps\": {:.1}, \"p50_us\": {:.1}, ",
                "\"p99_us\": {:.1}, \"p999_us\": {:.1}}}"
            ),
            self.sessions,
            self.samples_per_session,
            self.sessions * self.samples_per_session,
            self.events,
            self.wall_ms,
            self.throughput_sps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
        )
    }
}

/// Runs the sweep points (1–8 sessions on the full trace) plus one soak
/// point at `soak_sessions`, and writes `BENCH_serve.json`
/// (schema `rim-serve-bench/2`).
pub fn write_serve_bench(fast: bool, soak_sessions: usize) {
    let fs = env::SAMPLE_RATE;
    let length_m = if fast { 1.0 } else { 2.0 };
    let samples = workload(length_m, fs);

    let mut runs = Vec::new();
    for sessions in [1usize, 2, 4, 8] {
        let point = run_point(&samples, sessions);
        eprintln!(
            "[serve] sessions={sessions}: {:.0} samples/s aggregate, \
             ingest→estimate p50 {:.0} µs, p99 {:.0} µs, p999 {:.0} µs",
            point.throughput_sps, point.p50_us, point.p99_us, point.p999_us
        );
        runs.push(point);
    }

    let soak_input: Vec<SyncedSample> = workload(SOAK_WALK_M, fs);
    eprintln!("[serve] soaking {soak_sessions} concurrent sessions…");
    let soak = run_point(&soak_input, soak_sessions);
    eprintln!(
        "[serve] soak sessions={soak_sessions}: {:.0} samples/s aggregate, \
         ingest→estimate p50 {:.0} µs, p99 {:.0} µs, p999 {:.0} µs",
        soak.throughput_sps, soak.p50_us, soak.p99_us, soak.p999_us
    );

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"serve_sweep\",\n",
            "  \"schema\": \"rim-serve-bench/2\",\n",
            "  \"trace\": \"open_lab line {length} m @ {fs} Hz\",\n",
            "  \"transport\": \"loopback tcp, sessions multiplexed over ",
            "at most {drivers} connections\",\n",
            "  \"latency_budget_us\": {budget},\n",
            "  \"runs\": [\n{runs}\n  ],\n",
            "  \"soak\": {soak}\n}}\n"
        ),
        length = length_m,
        fs = fs,
        drivers = MAX_DRIVERS,
        budget = LATENCY_BUDGET_US,
        runs = runs
            .iter()
            .map(|p| format!("    {}", p.to_json()))
            .collect::<Vec<_>>()
            .join(",\n"),
        soak = soak.to_json(),
    );
    match std::fs::write("BENCH_serve.json", json) {
        Ok(()) => eprintln!("[serve] wrote BENCH_serve.json"),
        Err(e) => eprintln!("[serve] could not write BENCH_serve.json: {e}"),
    }
}

/// One lab walk with a stationary tail long enough ([`DWELL_S`]) that the
/// movement watchdog closes the moving segment mid-stream, so
/// ingest→estimate latency is measured on live samples instead of only
/// at finish.
fn workload(length_m: f64, fs: f64) -> Vec<SyncedSample> {
    let sim = ChannelSimulator::open_lab(7);
    let geo = env::linear_array();
    let mut traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        length_m,
        1.0,
        fs,
        OrientationMode::FollowPath,
    );
    let end = traj.pose(traj.len() - 1);
    traj.extend(&dwell(end.pos, end.orientation, DWELL_S, fs));
    let recording = CsiRecorder::new(
        &sim,
        env::device_for(&geo),
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record(&traj);
    rim_csi::synced_from_recording(&recording)
}

/// Streams `samples` into `sessions` concurrent sessions and returns the
/// aggregate throughput plus the server-side latency percentiles.
fn run_point(samples: &[SyncedSample], sessions: usize) -> Point {
    let geo = env::linear_array();
    let fs = env::SAMPLE_RATE;
    let serve_cfg = ServeConfig::builder()
        .shards(16)
        .max_sessions(sessions.max(1024))
        .latency_budget_us(LATENCY_BUDGET_US)
        .build()
        .expect("valid bench serve config");
    let manager = Arc::new(
        SessionManager::new(geo, env::rim_config(fs, 0.3), serve_cfg).expect("valid config"),
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&manager)).expect("bind loopback");
    let addr = server.local_addr();

    let drivers = sessions.clamp(1, MAX_DRIVERS);
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..drivers)
        .map(|d| {
            let samples = samples.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let owned: Vec<u64> = (d..sessions).step_by(drivers).map(|k| k as u64).collect();
                let mut events = 0usize;
                // Round-robin across owned sessions per sample round, so
                // every session advances together and the scheduler always
                // sees a cross-session mix.
                for sample in &samples {
                    for &k in &owned {
                        let (admit, drained) =
                            client.ingest_blocking(k, sample.clone()).expect("ingest");
                        assert!(
                            matches!(admit, Admit::Accepted),
                            "session {k} not accepted: {admit:?}"
                        );
                        events += drained.len();
                    }
                }
                for &k in &owned {
                    events += client.finish(k).expect("finish").len();
                }
                events
            })
        })
        .collect();
    let events: usize = handles
        .into_iter()
        .map(|h| h.join().expect("driver thread"))
        .sum();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    server.shutdown();

    let mut lat = manager.take_latencies();
    if lat.is_empty() {
        eprintln!(
            "[serve] WARNING: sessions={sessions} recorded no mid-stream segment \
             closes — latency percentiles are degenerate zeros"
        );
    }
    lat.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            0.0
        } else {
            lat[(((lat.len() - 1) as f64) * p).round() as usize]
        }
    };
    let total = sessions * samples.len();
    Point {
        sessions,
        samples_per_session: samples.len(),
        events,
        wall_ms,
        throughput_sps: total as f64 / (wall_ms / 1e3),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
    }
}
