//! The fusion benchmark behind `BENCH_fusion.json`: long-trajectory
//! error growth of RIM-only, IMU-only, and RIM×IMU fused tracking, with
//! a mid-run CSI blackout.
//!
//! The workload is a ~64 s stop-and-go square walk (two laps, corner
//! dwells) in the open lab, sampled by both the CSI recorder and a
//! consumer-grade simulated IMU. A 2 s whole-device CSI blackout is
//! injected mid-leg. The three estimators then consume the *same*
//! streams:
//!
//! * **RIM-only** — a plain [`RimStream`] over the gapped CSI, dead-
//!   reckoned from its segment events (distance + device heading +
//!   measured rotation). The blackout splits the open segment and the
//!   in-gap distance is simply never measured; with a linear array the
//!   corner turns are invisible too.
//! * **IMU-only** — the textbook strapdown mechanisation
//!   ([`rim_sensors::double_integrate_accel`] over
//!   [`rim_sensors::integrate_gyro`]); it diverges quadratically, which
//!   is the paper's §6.2.1 point.
//! * **Fused** — the [`rim_tracking::FusedStream`] error-state Kalman
//!   filter: IMU propagation, RIM distance/heading corrections,
//!   zero-velocity updates during the dwells, and IMU coasting through
//!   the blackout.
//!
//! The headline gate (checked by CI) is that the fused final position
//! error is strictly below both baselines.

use crate::env;
use rim_channel::trajectory::{dwell, line, OrientationMode, Trajectory};
use rim_channel::ChannelSimulator;
use rim_core::{ImuSample, RimStream, StreamEvent};
use rim_csi::{synced_from_recording, CsiRecorder, RecorderConfig};
use rim_dsp::geom::{Point2, Vec2};
use rim_dsp::stats::wrap_angle;
use rim_sensors::{double_integrate_accel, integrate_gyro, ImuConfig, SimulatedImu};
use rim_tracking::Fuser;

/// Side length of the square walk, metres.
const SIDE_M: f64 = 6.0;

/// Mean walking speed, m/s.
const SPEED_MPS: f64 = 1.0;

/// Gait granularity: the walk alternates fast/slow every `STEP_M`
/// metres, so the accelerometer sees per-step speed oscillation the way
/// it does on a real walker. A constant-velocity leg reads as zero body
/// acceleration — indistinguishable from standstill to any
/// accelerometer-based stance detector.
const STEP_M: f64 = 0.3;

/// Stationary dwell at each corner, seconds — long enough for the
/// movement watchdog to close the segment and for the ZUPT detector to
/// declare stance.
const DWELL_S: f64 = 2.0;

/// Number of laps around the square (8 legs ≈ 64 s total).
const LAPS: usize = 2;

/// CSI blackout window, seconds — strictly inside the fourth leg's
/// moving phase, so the blackout hides real motion from RIM.
const BLACKOUT_S: (f64, f64) = (26.0, 28.0);

/// Error-growth checkpoint spacing, seconds.
const CHECKPOINT_S: f64 = 10.0;

struct Outcome {
    duration_s: f64,
    checkpoints_s: Vec<f64>,
    rim_only_growth: Vec<f64>,
    imu_only_growth: Vec<f64>,
    fused_growth: Vec<f64>,
    rim_only_final: f64,
    imu_only_final: f64,
    fused_final: f64,
    fused_events: usize,
    zupt_count: u64,
    rim_updates: u64,
    coast_time_s: f64,
}

/// Runs the blackout comparison and writes `BENCH_fusion.json`
/// (schema `rim-fusion-bench/1`). `fast` halves the CSI/IMU sample
/// rate; the trajectory (and therefore the ≥60 s duration and the
/// blackout) is identical in both modes.
pub fn write_fusion_bench(fast: bool) {
    let fs = if fast { 100.0 } else { env::SAMPLE_RATE };
    let outcome = run(fs);
    eprintln!(
        "[fusion] {:.0} s walk, 2 s blackout: final error rim-only {:.2} m, \
         imu-only {:.2} m, fused {:.2} m ({} fused events, {} ZUPTs, \
         {} RIM updates, {:.1} s coasted)",
        outcome.duration_s,
        outcome.rim_only_final,
        outcome.imu_only_final,
        outcome.fused_final,
        outcome.fused_events,
        outcome.zupt_count,
        outcome.rim_updates,
        outcome.coast_time_s,
    );

    let series = |v: &[f64]| -> String {
        v.iter()
            .map(|e| format!("{e:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"fusion_blackout\",\n",
            "  \"schema\": \"rim-fusion-bench/1\",\n",
            "  \"trajectory\": \"open_lab square walk, {laps} laps x {side} m sides, ",
            "{dwell} s corner dwells @ {fs} Hz\",\n",
            "  \"duration_s\": {duration:.1},\n",
            "  \"imu_grade\": \"consumer\",\n",
            "  \"blackout\": {{\"start_s\": {b0:.1}, \"end_s\": {b1:.1}}},\n",
            "  \"checkpoints_s\": [{checkpoints}],\n",
            "  \"error_growth_m\": {{\n",
            "    \"rim_only\": [{rim_growth}],\n",
            "    \"imu_only\": [{imu_growth}],\n",
            "    \"fused\": [{fused_growth}]\n  }},\n",
            "  \"final_error_m\": {{\"rim_only\": {rim:.3}, ",
            "\"imu_only\": {imu:.3}, \"fused\": {fused:.3}}},\n",
            "  \"fused\": {{\"events\": {events}, \"zupt_count\": {zupts}, ",
            "\"rim_updates\": {updates}, \"coast_time_s\": {coast:.2}}}\n}}\n"
        ),
        laps = LAPS,
        side = SIDE_M,
        dwell = DWELL_S,
        fs = fs,
        duration = outcome.duration_s,
        b0 = BLACKOUT_S.0,
        b1 = BLACKOUT_S.1,
        checkpoints = series(&outcome.checkpoints_s),
        rim_growth = series(&outcome.rim_only_growth),
        imu_growth = series(&outcome.imu_only_growth),
        fused_growth = series(&outcome.fused_growth),
        rim = outcome.rim_only_final,
        imu = outcome.imu_only_final,
        fused = outcome.fused_final,
        events = outcome.fused_events,
        zupts = outcome.zupt_count,
        updates = outcome.rim_updates,
        coast = outcome.coast_time_s,
    );
    match std::fs::write("BENCH_fusion.json", json) {
        Ok(()) => eprintln!("[fusion] wrote BENCH_fusion.json"),
        Err(e) => eprintln!("[fusion] could not write BENCH_fusion.json: {e}"),
    }
}

/// One walked leg with gait bounce: `SIDE_M` metres along `heading`,
/// alternating 1.25×/0.8× the mean speed every [`STEP_M`] so the body
/// acceleration oscillates per step instead of vanishing.
fn walk_leg(from: Point2, heading: f64, fs: f64) -> Trajectory {
    let steps = (SIDE_M / STEP_M).round() as usize;
    let speed = |s: usize| SPEED_MPS * if s.is_multiple_of(2) { 1.25 } else { 0.8 };
    let mut leg = line(
        from,
        heading,
        STEP_M,
        speed(0),
        fs,
        OrientationMode::FollowPath,
    );
    for s in 1..steps {
        let end = leg.pose(leg.len() - 1);
        leg.extend(&line(
            end.pos,
            heading,
            STEP_M,
            speed(s),
            fs,
            OrientationMode::FollowPath,
        ));
    }
    leg
}

/// The stop-and-go square walk: `LAPS` laps of four `SIDE_M` legs with a
/// `DWELL_S` stationary hold at every corner.
fn workload(fs: f64) -> Trajectory {
    let start = Point2::new(0.0, 2.0);
    let mut traj = walk_leg(start, 0.0, fs);
    for leg in 1..4 * LAPS {
        let end = traj.pose(traj.len() - 1);
        traj.extend(&dwell(end.pos, end.orientation, DWELL_S, fs));
        let heading = (leg % 4) as f64 * std::f64::consts::FRAC_PI_2;
        let end = traj.pose(traj.len() - 1);
        traj.extend(&walk_leg(end.pos, heading, fs));
    }
    let end = traj.pose(traj.len() - 1);
    traj.extend(&dwell(end.pos, end.orientation, DWELL_S, fs));
    traj
}

/// Event-level dead reckoning from a plain RIM stream: accumulate each
/// segment's measured rotation into the device orientation, then step
/// the position along the segment's device-relative heading. This is
/// what an application without inertial sensors can reconstruct.
#[derive(Debug)]
struct RimDeadReckoner {
    position: Point2,
    orientation: f64,
}

impl RimDeadReckoner {
    fn absorb(&mut self, events: &[StreamEvent]) {
        for event in events {
            if let StreamEvent::Segment(seg) = event {
                self.orientation = wrap_angle(self.orientation + seg.rotation_rad);
                let dir = self.orientation + seg.heading_device.unwrap_or(0.0);
                self.position += Vec2::new(dir.cos(), dir.sin()) * seg.distance_m;
            }
        }
    }
}

fn run(fs: f64) -> Outcome {
    let traj = workload(fs);
    let start = traj.pose(0).pos;
    let sim = ChannelSimulator::open_lab(7);
    let geo = env::linear_array();
    let recording = CsiRecorder::new(
        &sim,
        env::device_for(&geo),
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record(&traj);
    let samples = synced_from_recording(&recording);
    let imu = SimulatedImu::new(ImuConfig::consumer(), 11).sample(&traj);

    // IMU-only strapdown baseline over the full recording.
    let orientation = integrate_gyro(&imu.gyro_z, fs, 0.0);
    let imu_track = double_integrate_accel(&imu.accel_body, &orientation, fs, start);

    // Consumer-grade tuning. The stance window is sized past the gait
    // period so only the corner dwells — not the lull between two steps —
    // read as standstill. The RIM heading observation is disabled: with
    // the device carried along the path (`OrientationMode::FollowPath`)
    // every segment reports `heading_device ≈ 0`, so the observation only
    // re-pins the heading to its anchor-time value and fights the (far
    // more accurate) gyro integration. And the velocity process noise is
    // raised to absorb the consumer accelerometer's ~0.25 m/s² turn-on
    // bias, which the 2D error state does not model explicitly.
    let fuser = Fuser::builder()
        .initial_position(start)
        .zupt_window((0.4 * fs) as usize)
        .rim_heading_noise(f64::INFINITY)
        .accel_noise(0.3)
        .build()
        .expect("fusion knobs are valid");
    let mut fused = fuser.stream(RimStream::new(geo.clone(), env::rim_config(fs, 0.3)).unwrap());
    let mut rim_only = RimStream::new(geo, env::rim_config(fs, 0.3)).unwrap();
    let mut reckoner = RimDeadReckoner {
        position: start,
        orientation: 0.0,
    };

    let in_blackout = |i: usize| {
        let t = i as f64 / fs;
        (BLACKOUT_S.0..BLACKOUT_S.1).contains(&t)
    };
    let mut fused_events = 0usize;
    let mut checkpoints_s = Vec::new();
    let mut rim_only_growth = Vec::new();
    let mut imu_only_growth = Vec::new();
    let mut fused_growth = Vec::new();
    let checkpoint_every = (CHECKPOINT_S * fs) as usize;
    for (i, sample) in samples.iter().enumerate() {
        let batch = vec![ImuSample {
            t_us: (i as f64 / fs * 1e6) as u64,
            accel_body: imu.accel_body[i],
            gyro_z: imu.gyro_z[i],
            mag_orientation: Some(imu.mag_orientation[i]),
        }];
        fused_events += fused
            .ingest(batch)
            .expect("imu ingest never errors")
            .iter()
            .filter(|e| matches!(e, StreamEvent::Fused { .. }))
            .count();
        if !in_blackout(i) {
            fused.ingest(sample).expect("csi ingest never errors");
            reckoner.absorb(&rim_only.ingest(sample.clone()).expect("csi ingest"));
        }
        if i > 0 && i % checkpoint_every == 0 {
            let truth = traj.pose(i).pos;
            checkpoints_s.push(i as f64 / fs);
            rim_only_growth.push(reckoner.position.distance(truth));
            imu_only_growth.push(imu_track[i].distance(truth));
            fused_growth.push(fused.position().distance(truth));
        }
    }
    fused.finish();
    reckoner.absorb(&rim_only.finish());

    let truth = traj.pose(traj.len() - 1).pos;
    Outcome {
        duration_s: traj.duration(),
        checkpoints_s,
        rim_only_growth,
        imu_only_growth,
        fused_growth,
        rim_only_final: reckoner.position.distance(truth),
        imu_only_final: imu_track.last().expect("non-empty track").distance(truth),
        fused_final: fused.position().distance(truth),
        fused_events,
        zupt_count: fused.zupt_count(),
        rim_updates: fused.rim_updates(),
        coast_time_s: fused.coast_time_us() as f64 / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_beats_both_baselines_through_the_blackout() {
        let o = run(100.0);
        assert!(o.duration_s >= 60.0, "walk is {:.1} s", o.duration_s);
        assert!(
            o.fused_final < o.rim_only_final,
            "fused {:.3} m vs rim-only {:.3} m",
            o.fused_final,
            o.rim_only_final
        );
        assert!(
            o.fused_final < o.imu_only_final,
            "fused {:.3} m vs imu-only {:.3} m",
            o.fused_final,
            o.imu_only_final
        );
        assert!(o.fused_events > 0, "fused events were emitted");
        assert!(o.zupt_count > 0, "dwells trigger zero-velocity updates");
        assert!(o.rim_updates > 0, "RIM segments correct the filter");
        assert!(
            o.coast_time_s >= 1.0,
            "the 2 s blackout shows up as coasting, got {:.2} s",
            o.coast_time_s
        );
    }
}
